"""The formal scheduler contract of the simulation substrate.

Every driver of simulated time — the calendar-queue :class:`~repro.sim.engine.Engine`,
the plain-heap :class:`~repro.sim.refengine.ReferenceEngine` oracle,
and the partitioned :class:`~repro.sim.parallel.ParallelDriver` — is an
:class:`EventScheduler`.  Scenario code written against this protocol
(routers, timers, links, fault injectors, the
:func:`repro.sim.scenarios.simulate` façade) runs unchanged on any of
them; the differential test suite leans on that substitutability.

The contract, beyond the signatures:

- Events fire in ``(time, insertion-order)`` order; two events at the
  same instant fire in the order they were scheduled.  All
  implementations must reproduce this order *bit-exactly* — it is what
  the engine-equivalence digests pin down.
- ``schedule``/``schedule_at`` return an :class:`~repro.sim.engine.EventHandle`
  that can be cancelled (directly or via :meth:`EventScheduler.cancel`)
  or re-armed via :meth:`EventScheduler.reschedule`.
- ``run_until(end_time)`` fires everything with ``time <= end_time``
  and then advances the clock to ``end_time`` even if idle;
  ``run()`` drains the queue; ``step()`` fires exactly one event.
- Implementations may restrict *when* scheduling is legal (the
  parallel driver only accepts host-side events between windows), but
  never reorder what they accepted.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from .engine import EventHandle

__all__ = ["EventScheduler"]


@runtime_checkable
class EventScheduler(Protocol):
    """Structural protocol for simulation schedulers.

    ``isinstance(obj, EventScheduler)`` checks method presence at
    runtime; the ordering semantics above are enforced by the
    differential tests, not the type system.
    """

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        ...

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        ...

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        ...

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        ...

    def reschedule(self, handle: EventHandle, time: float) -> EventHandle:
        """Re-arm ``handle`` at ``time``; returns the handle queued."""
        ...

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending handle (no-op if fired or already
        cancelled)."""
        ...

    def step(self) -> bool:
        """Process the next pending event; False if the queue is empty."""
        ...

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``)."""
        ...

    def run_until(
        self, end_time: float, max_events: Optional[int] = None
    ) -> int:
        """Run events with time <= ``end_time``; advance the clock."""
        ...

    def next_event_time(self) -> Optional[float]:
        """When the next live event fires, or None."""
        ...
