"""IGP↔BGP redistribution and its misconfigured oscillation.

The paper (§4.2): "Another plausible explanation for the source of the
periodic routing instability may be the improper configuration of the
interaction between interior gateway protocols (IGP) and BGP...  Since
the conversion between protocols is lossy, path information (e.g.,
ASPATH) is not preserved across protocols and routers will not be able
to detect an inter-protocol routing update oscillation.  This type of
interaction is highly suspect as most IGP protocols utilize internal
timers based on some multiple of 30 seconds."

The model: a border router redistributes between a small IGP table and
its BGP origination set.  With *mutual* redistribution configured and
no route filtering (the misconfiguration), a prefix cycles:

1. The IGP holds a native route for P → redistributed into BGP, the
   router originates P.
2. On the next IGP timer tick the BGP route is redistributed *back*
   into the IGP with a lower administrative distance than the native
   route; the native IGP route is displaced.
3. The IGP route for P is now derived from BGP — so the IGP→BGP
   redistribution no longer fires (the route's provenance is BGP), and
   the origination is withdrawn.
4. With the BGP route gone, the BGP-derived IGP route vanishes, the
   native IGP route returns, and the cycle restarts at 1.

ASPATH is lost at each crossing, so BGP's loop detection never sees the
cycle.  The result is a W/A oscillation paced exactly by the IGP timer
— a mechanistic source of the 30-second line in Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Optional

from ..net.prefix import Prefix
from .engine import Engine
from .router import Router
from .timers import IntervalTimer

__all__ = ["RouteSource", "IgpTable", "IgpBgpRedistribution"]


class RouteSource(Enum):
    """Where an IGP table entry came from."""

    NATIVE = auto()          #: learned inside the IGP (OSPF/RIP neighbor)
    REDISTRIBUTED = auto()   #: injected from BGP


@dataclass(slots=True)
class _IgpEntry:
    source: RouteSource
    metric: int


class IgpTable:
    """A toy IGP routing table: prefix → (source, metric).

    Lower metric wins; BGP-redistributed routes get ``bgp_metric``
    (the misconfiguration leaves it *better* than native routes, which
    is what makes the displacement in step 2 happen).
    """

    __slots__ = ("bgp_metric", "native_metric", "_entries", "_native")

    def __init__(self, bgp_metric: int = 1, native_metric: int = 10) -> None:
        self.bgp_metric = bgp_metric
        self.native_metric = native_metric
        self._entries: Dict[Prefix, _IgpEntry] = {}
        self._native: Dict[Prefix, int] = {}

    def add_native(self, prefix: Prefix, metric: Optional[int] = None) -> None:
        """A route learned natively inside the IGP."""
        self._native[prefix] = (
            metric if metric is not None else self.native_metric
        )
        self._recompute(prefix, bgp_available=self.is_bgp_derived(prefix))

    def remove_native(self, prefix: Prefix) -> None:
        self._native.pop(prefix, None)
        self._recompute(prefix, bgp_available=self.is_bgp_derived(prefix))

    def entry(self, prefix: Prefix) -> Optional[_IgpEntry]:
        return self._entries.get(prefix)

    def is_bgp_derived(self, prefix: Prefix) -> bool:
        entry = self._entries.get(prefix)
        return entry is not None and entry.source is RouteSource.REDISTRIBUTED

    def apply_bgp(self, prefix: Prefix, available: bool) -> None:
        """Run the BGP→IGP redistribution rule for one prefix."""
        self._recompute(prefix, bgp_available=available)

    def _recompute(self, prefix: Prefix, bgp_available: bool) -> None:
        native_metric = self._native.get(prefix)
        candidates = []
        if native_metric is not None:
            candidates.append(_IgpEntry(RouteSource.NATIVE, native_metric))
        if bgp_available:
            candidates.append(
                _IgpEntry(RouteSource.REDISTRIBUTED, self.bgp_metric)
            )
        if not candidates:
            self._entries.pop(prefix, None)
            return
        self._entries[prefix] = min(candidates, key=lambda e: e.metric)


class IgpBgpRedistribution:
    """Mutual IGP↔BGP redistribution on one border router.

    Every ``igp_period`` seconds (the IGP's internal timer) the
    redistribution rules run:

    - IGP→BGP: prefixes whose IGP entry is NATIVE are originated into
      BGP; prefixes whose IGP entry is REDISTRIBUTED (or absent) have
      their origination withdrawn.
    - BGP→IGP: the router's BGP origination state is injected into the
      IGP table.

    With ``filtered=True`` (the correct configuration) BGP-derived IGP
    routes are excluded from the BGP→IGP injection, which breaks the
    loop and the oscillation stops after one settling tick — the ablation
    contrast for the misconfiguration study.
    """

    __slots__ = (
        "engine",
        "router",
        "igp",
        "filtered",
        "oscillation_count",
        "_originating",
        "timer",
    )

    def __init__(
        self,
        engine: Engine,
        router: Router,
        igp: IgpTable,
        igp_period: float = 30.0,
        filtered: bool = False,
    ) -> None:
        self.engine = engine
        self.router = router
        self.igp = igp
        self.filtered = filtered
        self.oscillation_count = 0
        self._originating: set = set()
        self.timer = IntervalTimer(engine, igp_period, self._tick)

    def start(self) -> None:
        self.timer.start()

    def stop(self) -> None:
        self.timer.stop()

    def _tick(self) -> None:
        prefixes = set(self.igp._native) | set(self.igp._entries) | set(
            self._originating
        )
        for prefix in sorted(prefixes):
            self._redistribute(prefix)

    def _redistribute(self, prefix: Prefix) -> None:
        entry = self.igp.entry(prefix)
        should_originate = (
            entry is not None and entry.source is RouteSource.NATIVE
        )
        if should_originate and prefix not in self._originating:
            self.router.originate(prefix)
            self._originating.add(prefix)
            self.oscillation_count += 1
        elif not should_originate and prefix in self._originating:
            self.router.withdraw_origin(prefix)
            self._originating.discard(prefix)
            self.oscillation_count += 1
        # BGP→IGP leg.  The misconfiguration injects every originated
        # route back into the IGP; the correct configuration filters
        # out routes whose IGP copy would be BGP-derived.
        bgp_available = prefix in self._originating
        if self.filtered:
            # Correct config: never inject BGP routes back into the IGP
            # on the same router that redistributes IGP into BGP.
            self.igp.apply_bgp(prefix, available=False)
        else:
            self.igp.apply_bgp(prefix, available=bgp_available)
