"""Links between routers, including the CSU clock-drift oscillation.

A :class:`Link` carries messages between two endpoints with a fixed
propagation delay and an up/down state; when it goes down, in-flight
messages are lost and both endpoints are notified (their interface
cards "are sensitive to millisecond loss of line carrier and will flag
the link as down").

:class:`CsuLink` adds the paper's CSU pathology (§4.2): a leased line
whose two Channel Service Units derive their clocks from different
sources drifts in and out of alignment, producing *periodic* carrier
loss.  The resulting up/down cycle has a near-constant period — which
is how physical-layer misconfiguration manufactures the periodic
WADup oscillations the classifier sees.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from .engine import Engine, EventHandle

__all__ = ["Link", "CsuLink"]


class _Endpoint:
    """One attached side of a link: identity plus delivery/up/down
    callbacks."""

    __slots__ = ("id", "deliver", "on_up", "on_down")

    def __init__(
        self,
        endpoint_id: int,
        deliver: Callable[[int, object], None],
        on_up: Optional[Callable[[], None]],
        on_down: Optional[Callable[[], None]],
    ) -> None:
        self.id = endpoint_id
        self.deliver = deliver
        self.on_up = on_up
        self.on_down = on_down


class Link:
    """A bidirectional point-to-point link.

    Endpoints register ``(deliver, link_up, link_down)`` callback
    triples via :meth:`attach`.  Messages are delivered after
    ``delay`` seconds unless the link drops in the meantime.

    With ``wire=True`` every message is serialized to its RFC 4271
    byte form on send and re-parsed on delivery — full wire fidelity
    inside the simulator (and byte counters for capacity studies), at
    a CPU cost.  The default object-passing mode is semantically
    identical because the codec round-trips exactly (property-tested
    in ``tests/test_wire.py``).  Serialization goes through the
    memoized codec (:func:`repro.bgp.wire.encode_message_cached`):
    table dumps and flap storms re-send identical UPDATEs per peer, so
    repeat encodes are a dict hit.
    """

    __slots__ = (
        "engine",
        "delay",
        "wire",
        "is_up",
        "_endpoints",
        "_in_flight",
        "_encode",
        "_decode",
        "messages_delivered",
        "messages_lost",
        "bytes_carried",
        "down_count",
    )

    def __init__(
        self, engine: Engine, delay: float = 0.01, wire: bool = False
    ) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.engine = engine
        self.delay = delay
        self.wire = wire
        self.is_up = True
        self._endpoints: List[_Endpoint] = []
        self._in_flight: List[EventHandle] = []
        if wire:
            from ..bgp.wire import decode_message_cached, encode_message_cached

            self._encode = encode_message_cached
            self._decode = decode_message_cached
        else:
            self._encode = None
            self._decode = None
        self.messages_delivered = 0
        self.messages_lost = 0
        self.bytes_carried = 0
        self.down_count = 0

    def attach(
        self,
        endpoint_id: int,
        deliver: Callable[[int, object], None],
        on_up: Optional[Callable[[], None]] = None,
        on_down: Optional[Callable[[], None]] = None,
    ) -> None:
        """Register an endpoint.  ``deliver(sender_id, message)`` is
        called for traffic addressed to this endpoint."""
        if len(self._endpoints) >= 2:
            raise ValueError("point-to-point link already has two endpoints")
        self._endpoints.append(
            _Endpoint(endpoint_id, deliver, on_up, on_down)
        )

    def send(self, sender_id: int, message: object) -> bool:
        """Transmit ``message`` from ``sender_id`` to the other end.

        Returns False (message lost) when the link is down.
        """
        if not self.is_up:
            self.messages_lost += 1
            return False
        if self.wire:
            message = self._encode(message)
            self.bytes_carried += len(message)
        receiver = self._other(sender_id)
        handle = self.engine.schedule(
            self.delay, self._deliver, receiver, sender_id, message
        )
        self._in_flight.append(handle)
        if len(self._in_flight) > 256:
            # Compact delivered/cancelled entries so long simulations
            # don't accumulate dead handles.
            self._in_flight = [
                h for h in self._in_flight
                if not h.cancelled and not h.fired
            ]
        return True

    def _deliver(
        self, receiver: _Endpoint, sender_id: int, message: object
    ) -> None:
        # Link may have dropped while the message was in flight.
        if not self.is_up:
            self.messages_lost += 1
            return
        self.messages_delivered += 1
        if self.wire:
            message, _ = self._decode(message)
        receiver.deliver(sender_id, message)

    def _other(self, endpoint_id: int) -> _Endpoint:
        for endpoint in self._endpoints:
            if endpoint.id != endpoint_id:
                return endpoint
        raise ValueError(f"endpoint {endpoint_id} not attached to link")

    # -- state changes -----------------------------------------------------

    def go_down(self) -> None:
        """Drop the link: lose in-flight traffic, notify endpoints.

        Only handles that have neither fired (message already
        delivered) nor been cancelled count as lost — ``_in_flight``
        keeps delivered handles around until the >256 compaction, and
        counting those double-booked ``messages_lost``.
        """
        if not self.is_up:
            return
        self.is_up = False
        self.down_count += 1
        lost = 0
        for handle in self._in_flight:
            if handle.fired or handle.cancelled:
                continue
            handle.cancel()
            lost += 1
        self.messages_lost += lost
        self._in_flight.clear()
        for endpoint in self._endpoints:
            if endpoint.on_down is not None:
                endpoint.on_down()

    def go_up(self) -> None:
        """Restore the link and notify endpoints."""
        if self.is_up:
            return
        self.is_up = True
        for endpoint in self._endpoints:
            if endpoint.on_up is not None:
                endpoint.on_up()


class CsuLink(Link):
    """A leased line with misconfigured CSU clocking.

    The drift between the two clock sources causes the line to cycle:
    up for ``up_duration`` seconds, then down for ``down_duration``
    while the CSUs re-handshake.  Small multiplicative noise keeps the
    cycle from being perfectly crystalline (real CSUs re-train with
    slightly variable timing) while preserving the dominant period.

    Defaults give a 60-second dominant cycle — one of the two
    periodicities in Figure 8.
    """

    __slots__ = ("up_duration", "down_duration", "noise", "rng", "_oscillating")

    def __init__(
        self,
        engine: Engine,
        delay: float = 0.01,
        up_duration: float = 55.0,
        down_duration: float = 5.0,
        noise: float = 0.02,
        rng: Optional[random.Random] = None,
        start_oscillating: bool = True,
    ) -> None:
        super().__init__(engine, delay)
        if up_duration <= 0 or down_duration <= 0:
            raise ValueError("durations must be positive")
        self.up_duration = up_duration
        self.down_duration = down_duration
        self.noise = noise
        self.rng = rng or random.Random(0)
        self._oscillating = False
        if start_oscillating:
            self.start_oscillating()

    @property
    def period(self) -> float:
        """The dominant oscillation period."""
        return self.up_duration + self.down_duration

    def _noisy(self, duration: float) -> float:
        if self.noise == 0.0:
            return duration
        return duration * self.rng.uniform(1.0 - self.noise, 1.0 + self.noise)

    def start_oscillating(self) -> None:
        """Begin the carrier-loss cycle."""
        if self._oscillating:
            return
        self._oscillating = True
        self.engine.schedule(self._noisy(self.up_duration), self._drop)

    def stop_oscillating(self) -> None:
        """Fix the CSU configuration: the line stays up from the next
        recovery onward."""
        self._oscillating = False

    def _drop(self) -> None:
        if not self._oscillating:
            return
        self.go_down()
        self.engine.schedule(self._noisy(self.down_duration), self._recover)

    def _recover(self) -> None:
        self.go_up()
        if self._oscillating:
            self.engine.schedule(self._noisy(self.up_duration), self._drop)
