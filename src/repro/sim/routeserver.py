"""The Routing Arbiter route server: the measurement point.

The paper's data comes from route servers at the exchange points:
Unix machines that "do not forward network traffic" but "peer with the
majority (over 90 percent) of the service providers at each exchange
point" and log every BGP message.

:class:`RouteServer` is a :class:`~repro.sim.router.Router` that

- records every received per-prefix update into a collector sink
  (anything with ``append(UpdateRecord)``), and
- by default does not advertise anything back (its RIB is a passive
  view).  Setting ``readvertise=True`` turns on the real route-server
  function — computing best routes on behalf of clients and sending
  post-policy summaries — which the route-server ablation benchmark
  uses to reproduce the O(N²) → O(N) peering-session argument.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..bgp.messages import UpdateMessage
from ..bgp.policy import RouteMap
from ..collector.record import flatten_update
from ..net.prefix import Prefix
from .engine import Engine
from .router import Router

__all__ = ["RouteServer"]


class RouteServer(Router):
    """A logging route server (see module docstring).

    ``client_policies`` maps a client peer id to the export
    :class:`~repro.bgp.policy.RouteMap` the server evaluates *on that
    client's behalf* — the Routing Arbiter's actual service: "This
    server maintains peering sessions with each exchange point router
    and performs routing table policy computations on behalf of each
    client peer.  The route server transmits a summary of post-policy
    routing table changes to each client peer."  Only consulted in
    ``readvertise`` mode.
    """

    __slots__ = (
        "sink",
        "readvertise",
        "client_policies",
        "records_logged",
        "session_events",
    )

    def __init__(
        self,
        engine: Engine,
        asn: int,
        router_id: int,
        sink=None,
        readvertise: bool = False,
        client_policies: Optional[Dict[int, RouteMap]] = None,
        **kwargs,
    ) -> None:
        # Route servers in 1996 were Unix boxes, not cache-based
        # routers; no cache, generous CPU by default.
        kwargs.setdefault("cpu", None)
        super().__init__(engine, asn, router_id, **kwargs)
        self.sink = sink
        self.readvertise = readvertise
        self.client_policies = dict(client_policies or {})
        self.records_logged = 0
        #: Session FSM transitions observed (for storm forensics);
        #: list of :class:`~repro.collector.mrt_rfc.SessionEvent`.
        self.session_events = []

    def _record_session_event(
        self, peer_id: int, old_state: str, new_state: str
    ) -> None:
        from ..collector.mrt_rfc import SessionEvent

        self.session_events.append(
            SessionEvent(
                time=self.engine.now,
                peer_id=peer_id,
                peer_asn=self.peer_asns.get(peer_id, 0),
                old_state=old_state,
                new_state=new_state,
            )
        )

    def _on_session_up(self, peer_id: int) -> None:
        self._record_session_event(peer_id, "OPEN_CONFIRM", "ESTABLISHED")
        super()._on_session_up(peer_id)

    def _on_session_down(self, peer_id: int) -> None:
        self._record_session_event(peer_id, "ESTABLISHED", "IDLE")
        super()._on_session_down(peer_id)

    def set_client_policy(self, peer_id: int, policy: RouteMap) -> None:
        """Install/replace the per-client export policy."""
        self.client_policies[peer_id] = policy

    def _export(self, peer_id: int, prefix: Prefix):
        """Apply the client's own policy on top of the standard export."""
        exported = super()._export(peer_id, prefix)
        if exported is None:
            return None
        policy = self.client_policies.get(peer_id)
        if policy is not None:
            return policy.evaluate(prefix, exported)
        return exported

    def _process_update(self, sender_id: int, message: UpdateMessage) -> None:
        if self.sink is not None:
            peer_asn = self.peer_asns.get(sender_id, 0)
            records = flatten_update(
                self.engine.now, sender_id, peer_asn, message
            )
            for record in records:
                self.sink.append(record)
            self.records_logged += len(records)
        super()._process_update(sender_id, message)

    # A passive route server never advertises; with ``readvertise`` it
    # behaves as a normal (stateful) router.

    def _flush(self, dirty: Set[Prefix]) -> None:
        if self.readvertise:
            super()._flush(dirty)

    def _send_table_dump(self, peer_id: int) -> None:
        if self.readvertise:
            super()._send_table_dump(peer_id)
