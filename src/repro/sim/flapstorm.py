"""Route-flap storm dynamics.

The paper (§3): "a router which fails under heavy routing instability
can instigate a 'route flap storm.'  ...overloaded routers are marked
as unreachable by BGP peers as they fail to maintain the required
interval of Keep-Alive transmissions.  As routers are marked as
unreachable, peer routers will choose alternative paths... and will
transmit updates reflecting the change in topology to each of their
peers.  In turn, after recovering..., the 'down' router will attempt to
re-initiate a BGP peering session with each of its peer routers,
generating large state dump transmissions.  This increased load will
cause yet more routers to fail..."

:class:`FlapStormScenario` builds a full mesh of CPU-limited routers
carrying a route table, injects a seed burst of prefix flaps at one
router, and measures the cascade: session drops over time, update
volume, and whether prioritizing keepalives (the vendors' eventual fix,
modelled by exempting keepalives from the CPU queue) contains the
storm.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.prefix import Prefix
from .engine import Engine
from .router import CpuModel, Router, connect

__all__ = ["FlapStormScenario", "StormResult"]


@dataclass(slots=True)
class StormResult:
    """What a storm run produced."""

    session_drops: int = 0
    total_updates_sent: int = 0
    crashes: int = 0
    drop_times: List[float] = field(default_factory=list)

    @property
    def stormed(self) -> bool:
        """True if the failure spread beyond the seed router's own
        sessions (the storm ignited)."""
        return self.session_drops > 0


class FlapStormScenario:
    """A configurable flap-storm testbed (see module docstring).

    Parameters
    ----------
    n_routers:
        Mesh size (full mesh, like exchange-point bilateral peering).
    prefixes_per_router:
        Each router originates this many /24s; the table everyone
        carries is ``n_routers * prefixes_per_router`` routes.
    cpu:
        The shared CPU cost model; slower CPUs storm sooner.
    keepalive_priority:
        The modern-router fix: "BGP traffic is given a higher priority
        and Keep-Alive messages persist even under heavy instability."
        When True keepalives bypass the CPU queue.
    hold_time:
        Session hold time; shorter means less tolerance for delay.
    engine:
        Optional scheduler to run on (the differential benchmark passes
        the reference heap engine); a fresh :class:`Engine` by default.
    """

    __slots__ = ("engine", "cpu", "keepalive_priority", "rng", "routers")

    def __init__(
        self,
        n_routers: int = 6,
        prefixes_per_router: int = 60,
        cpu: Optional[CpuModel] = None,
        keepalive_priority: bool = False,
        hold_time: float = 30.0,
        mrai_interval: float = 5.0,
        seed: int = 0,
        engine: Optional[Engine] = None,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.cpu = cpu or CpuModel(per_update=0.02, per_sent_update=0.01)
        self.keepalive_priority = keepalive_priority
        self.rng = random.Random(seed)
        self.routers: List[Router] = []
        base = 10 * (1 << 24)
        for i in range(n_routers):
            router = Router(
                self.engine,
                asn=100 + i,
                router_id=(192 << 24) + i + 1,
                cpu=self.cpu,
                hold_time=hold_time,
                mrai_interval=mrai_interval,
                mrai_jitter=0.25,
                keepalive_priority=keepalive_priority,
                rng=random.Random(seed + i),
            )
            self.routers.append(router)
        # Originations: distinct /24s per router.
        prefix_index = 0
        for router in self.routers:
            for _ in range(prefixes_per_router):
                router.originate(Prefix(base + prefix_index * 256, 24))
                prefix_index += 1
        # Full mesh.
        for i, a in enumerate(self.routers):
            for b in self.routers[i + 1:]:
                connect(a, b)

    # -- running ------------------------------------------------------------

    def settle(self, duration: float = 120.0) -> None:
        """Let sessions establish and tables converge."""
        self.engine.run_until(self.engine.now + duration)

    def established_sessions(self) -> int:
        return sum(
            1
            for router in self.routers
            for session in router.sessions.values()
            if session.is_established
        )

    def inject_burst(
        self,
        victim_index: int = 0,
        flaps: int = 200,
        over_seconds: float = 10.0,
    ) -> None:
        """Flap the victim's originated prefixes rapidly."""
        victim = self.routers[victim_index]
        prefixes = victim.originated
        for i in range(flaps):
            at = self.engine.now + (i / flaps) * over_seconds
            prefix = prefixes[i % len(prefixes)]
            self.engine.schedule_at(
                at, victim.flap_origin, prefix, 0.5
            )

    def run_storm(
        self,
        flaps: int = 200,
        over_seconds: float = 10.0,
        observe_for: float = 300.0,
    ) -> StormResult:
        """Deprecated alias of :meth:`storm` (``run_storm`` predates
        the :class:`~repro.sim.scheduler.EventScheduler` protocol and
        the :func:`repro.sim.simulate` façade)."""
        warnings.warn(
            "FlapStormScenario.run_storm() is deprecated; use "
            "FlapStormScenario.storm() or repro.sim.simulate()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.storm(
            flaps=flaps, over_seconds=over_seconds, observe_for=observe_for
        )

    def storm(
        self,
        flaps: int = 200,
        over_seconds: float = 10.0,
        observe_for: float = 300.0,
    ) -> StormResult:
        """Settle, inject, observe; returns cascade metrics."""
        self.settle()
        drops_before = self._total_drops()
        self.inject_burst(flaps=flaps, over_seconds=over_seconds)
        self.engine.run_until(self.engine.now + observe_for)
        result = StormResult()
        result.session_drops = self._total_drops() - drops_before
        result.total_updates_sent = sum(
            r.updates_sent for r in self.routers
        )
        result.crashes = sum(r.crash_count for r in self.routers)
        for router in self.routers:
            for session in router.sessions.values():
                result.drop_times.extend(
                    t.time
                    for t in session.fsm.history
                    if t.before.name == "ESTABLISHED"
                    and t.after.name != "ESTABLISHED"
                )
        result.drop_times.sort()
        return result

    def _total_drops(self) -> int:
        return sum(
            session.fsm.drop_count
            for router in self.routers
            for session in router.sessions.values()
        )
