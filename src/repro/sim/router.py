"""The BGP border router model.

This is where the paper's §4.2 mechanisms live:

**Stateless vs stateful BGP.**  A *stateful* router keeps an Adj-RIB-Out
per peer and suppresses redundant output: it never withdraws a prefix
it did not advertise to that peer, and never re-sends an identical
announcement.  The paper's problem vendor shipped *stateless* BGP —
"a time-space tradeoff implementation decision... not to maintain state
on the information advertised to the router's BGP peers.  Upon receipt
of any topology change, these routers will transmit withdrawals to all
BGP peers regardless of whether they had previously sent the peer an
announcement" — the WWDup factory.  Set ``stateless_bgp=True`` to get
that behaviour.

**The 30-second interval timer.**  Outbound changes are batched by a
:class:`~repro.sim.timers.MraiBatcher`; at flush time the router
advertises the *current* table state for each dirty prefix.  An
A1→A2→A1 oscillation inside one interval therefore emits a duplicate
announcement from a stateless router (AADup), and W→A→W emits a
repeated withdrawal (WWDup) — the paper's conjectured genesis of both
pathologies.  ``mrai_jitter=0`` reproduces the unjittered vendor timer.

**The CPU / keepalive coupling.**  All message processing and
transmission passes through a serial CPU-work queue.  Under an update
storm the queue backs up, keepalive transmissions are delayed past the
peer's hold timer, sessions drop, peers withdraw and re-announce — the
route-flap-storm feedback loop.  A configurable queue-depth limit
crashes the router outright, reproducing the paper's informal
300-updates/second crash experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..bgp.attributes import AsPath, PathAttributes, interned
from ..bgp.damping import RouteFlapDamper
from ..bgp.messages import (
    KeepAliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from ..bgp.policy import RouteMap
from ..bgp.rib import AdjRibOut, ChangeKind, LocRib, RibChange
from ..bgp.session import ActionKind, PeeringSession, SessionAction
from ..net.prefix import Prefix
from .engine import Engine
from .link import Link
from .timers import DEFAULT_MRAI, MraiBatcher

__all__ = ["Router", "CpuModel", "RouteCache", "connect"]

#: Pseudo-peer id for locally-originated routes.
LOCAL_PEER = 0


@dataclass(slots=True)
class CpuModel:
    """Per-operation CPU costs (seconds) for the serial work queue.

    Defaults are scaled to the paper's era: a light 68000-class
    processor spending on the order of a millisecond per prefix update,
    so a burst of a few hundred updates per second saturates it.
    """

    per_update: float = 0.002         #: processing one received prefix event
    per_sent_update: float = 0.001    #: marshalling one outbound prefix event
    per_keepalive: float = 0.0005
    per_policy_term: float = 0.0002   #: each route-map term evaluated
    per_dump_route: float = 0.001     #: table-dump marshalling per route


@dataclass(slots=True)
class RouteCache:
    """A route-caching line card (§3 of the paper).

    Forwarding lookups hit the cache; route changes invalidate entries.
    Under instability the cache churns, lookups miss, and misses cost
    router CPU — the mechanism behind instability-induced packet loss
    on cache-based architectures.  Modern "full table in forwarding
    memory" routers are modelled by simply not attaching a cache.
    """

    capacity: int = 10000
    entries: Dict[Prefix, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def lookup(self, prefix: Prefix, resolve: Callable[[Prefix], Optional[int]]) -> Optional[int]:
        """Forward a packet for ``prefix``; ``resolve`` consults the RIB
        on a miss (the slow path through the CPU)."""
        if prefix in self.entries:
            self.hits += 1
            return self.entries[prefix]
        self.misses += 1
        next_hop = resolve(prefix)
        if next_hop is not None:
            if len(self.entries) >= self.capacity:
                # FIFO eviction: drop the oldest entry.
                self.entries.pop(next(iter(self.entries)))
            self.entries[prefix] = next_hop
        return next_hop

    def invalidate(self, prefix: Prefix) -> None:
        if self.entries.pop(prefix, None) is not None:
            self.invalidations += 1

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class Router:
    """A BGP border router attached to a simulation engine.

    Parameters
    ----------
    engine:
        The event engine.
    asn, router_id:
        AS number and unique 32-bit identifier (also used as the
        NEXT_HOP it advertises).
    stateless_bgp:
        True reproduces the paper's pathological vendor implementation.
    mrai_interval, mrai_jitter, mrai_phase:
        The outbound batching timer.  ``jitter=0`` is the unjittered
        vendor timer; the conventional fix is ``jitter=0.25``.
    hold_time:
        Session hold time (keepalives at a third of it).
    cpu:
        CPU cost model; None disables CPU accounting (infinite speed).
    cache:
        Optional route-caching line card.
    damper:
        Optional route-flap damper applied to received routes.
    crash_queue_limit:
        CPU work-queue depth that crashes the router (None = never).
    reboot_delay:
        Seconds a crashed router stays dark before rebooting.
    keepalive_priority:
        The modern-router fix: "BGP traffic is given a higher priority
        and Keep-Alive messages persist even under heavy instability."
        When True keepalive transmission bypasses the CPU queue.
    """

    __slots__ = (
        "engine",
        "asn",
        "router_id",
        "name",
        "stateless_bgp",
        "hold_time",
        "cpu",
        "cache",
        "damper",
        "import_policy",
        "export_policy",
        "crash_queue_limit",
        "reboot_delay",
        "restart_delay",
        "keepalive_priority",
        "rng",
        "loc_rib",
        "adj_out",
        "sessions",
        "links",
        "peer_asns",
        "_origins",
        "_suppressed",
        "_wakeups",
        "_aggregates",
        "batcher",
        "crashed",
        "crash_count",
        "_busy_until",
        "_queue_depth",
        "_reuse_poll_armed",
        "updates_received",
        "updates_sent",
        "announcements_sent",
        "withdrawals_sent",
        "keepalives_sent",
        "suppressed_outputs",
    )

    def __init__(
        self,
        engine: Engine,
        asn: int,
        router_id: int,
        stateless_bgp: bool = False,
        mrai_interval: float = DEFAULT_MRAI,
        mrai_jitter: float = 0.0,
        mrai_phase: float = 0.0,
        hold_time: float = 90.0,
        cpu: Optional[CpuModel] = None,
        cache: Optional[RouteCache] = None,
        damper: Optional[RouteFlapDamper] = None,
        import_policy: Optional[RouteMap] = None,
        export_policy: Optional[RouteMap] = None,
        crash_queue_limit: Optional[int] = None,
        reboot_delay: float = 60.0,
        restart_delay: float = 5.0,
        keepalive_priority: bool = False,
        rng: Optional[random.Random] = None,
        name: str = "",
    ) -> None:
        self.engine = engine
        self.asn = asn
        self.router_id = router_id
        self.name = name or f"AS{asn}/{router_id}"
        self.stateless_bgp = stateless_bgp
        self.hold_time = hold_time
        self.cpu = cpu
        self.cache = cache
        self.damper = damper
        self.import_policy = import_policy
        self.export_policy = export_policy
        self.crash_queue_limit = crash_queue_limit
        self.reboot_delay = reboot_delay
        self.restart_delay = restart_delay
        self.keepalive_priority = keepalive_priority
        self.rng = rng or random.Random(router_id)
        self._reuse_poll_armed = False

        self.loc_rib = LocRib()
        self.adj_out = AdjRibOut()
        self.sessions: Dict[int, PeeringSession] = {}
        self.links: Dict[int, Link] = {}
        self.peer_asns: Dict[int, int] = {}
        self._origins: Dict[Prefix, PathAttributes] = {}
        self._suppressed: Dict[Tuple[Prefix, int], PathAttributes] = {}
        self._wakeups: Dict[int, float] = {}
        #: configured CIDR aggregates: supernet -> reachable members
        self._aggregates: Dict[Prefix, Set[Prefix]] = {}

        self.batcher = MraiBatcher(
            engine,
            self._flush,
            interval=mrai_interval,
            jitter=mrai_jitter,
            rng=self.rng,
            phase=mrai_phase,
        )
        self.batcher.start()

        self.crashed = False
        self.crash_count = 0
        self._busy_until = 0.0
        self._queue_depth = 0

        # Counters used by benchmarks and diagnostics.
        self.updates_received = 0
        self.updates_sent = 0
        self.announcements_sent = 0
        self.withdrawals_sent = 0
        self.keepalives_sent = 0
        self.suppressed_outputs = 0     # stateful suppression savings

    # ------------------------------------------------------------------
    # topology wiring
    # ------------------------------------------------------------------

    def add_peer(self, peer_id: int, peer_asn: int, link: Link) -> None:
        """Register a peer reachable over ``link`` (does not start the
        session — call :meth:`start_session`)."""
        self.links[peer_id] = link
        self.peer_asns[peer_id] = peer_asn
        self.sessions[peer_id] = PeeringSession(
            local_asn=self.asn,
            peer_asn=peer_asn,
            hold_time=self.hold_time,
            local_id=self.router_id,
        )
        link.attach(
            self.router_id,
            deliver=self._on_link_message,
            on_up=lambda p=peer_id: self._on_link_up(p),
            on_down=lambda p=peer_id: self._on_link_down(p),
        )

    def start_session(self, peer_id: int) -> None:
        """Initiate the BGP session toward ``peer_id``."""
        if self.crashed:
            return
        session = self.sessions[peer_id]
        if session.is_established:
            return
        self._run_actions(peer_id, session.start(self.engine.now))
        self._schedule_session_wakeup(peer_id)

    # ------------------------------------------------------------------
    # route origination (the customer-facing edge)
    # ------------------------------------------------------------------

    def originate(
        self, prefix: Prefix, attributes: Optional[PathAttributes] = None
    ) -> None:
        """Originate ``prefix`` locally (an attached customer network)."""
        attrs = attributes or PathAttributes(
            as_path=AsPath(), next_hop=self.router_id
        )
        self._origins[prefix] = attrs
        change = self.loc_rib.apply_announce(LOCAL_PEER, prefix, attrs)
        self._note_change(change)

    def withdraw_origin(self, prefix: Prefix) -> None:
        """Stop originating ``prefix`` (customer circuit down)."""
        self._origins.pop(prefix, None)
        change = self.loc_rib.apply_withdraw(LOCAL_PEER, prefix)
        self._note_change(change)

    def flap_origin(self, prefix: Prefix, down_for: float = 1.0) -> None:
        """Convenience fault: withdraw then re-originate after
        ``down_for`` seconds — one customer-circuit flap."""
        attrs = self._origins.get(prefix)
        if attrs is None:
            return
        self.withdraw_origin(prefix)
        self.engine.schedule(down_for, self.originate, prefix, attrs)

    @property
    def originated(self) -> List[Prefix]:
        return list(self._origins)

    # ------------------------------------------------------------------
    # CIDR aggregation (the paper's central countermeasure)
    # ------------------------------------------------------------------

    def configure_aggregate(self, supernet: Prefix) -> None:
        """Announce ``supernet`` in place of its component routes.

        The paper (§4.1): "an autonomous system will maintain a path to
        an aggregate supernet prefix as long as a path to one or more
        of the component prefixes is available.  This effectively
        limits the visibility of instability stemming from unstable
        customer circuits or routers to the scope of a single
        autonomous system."  Components covered by the supernet are
        never exported; the supernet is advertised while at least one
        component is reachable in the Loc-RIB, and carries the
        ATOMIC_AGGREGATE / AGGREGATOR attributes.
        """
        members = {
            prefix
            for prefix in self.loc_rib.prefixes()
            if supernet.covers(prefix)
        }
        self._aggregates[supernet] = members
        self.batcher.mark_dirty(supernet)

    def _covering_aggregate(self, prefix: Prefix) -> Optional[Prefix]:
        for supernet in self._aggregates:
            if supernet != prefix and supernet.covers(prefix):
                return supernet
        return None

    def _aggregate_attributes(self, supernet: Prefix) -> PathAttributes:
        return PathAttributes(
            as_path=AsPath((self.asn,)),
            next_hop=self.router_id,
            atomic_aggregate=True,
            aggregator=(self.asn, self.router_id),
        )

    # ------------------------------------------------------------------
    # CPU work queue
    # ------------------------------------------------------------------

    def _cpu_submit(self, cost: float, fn: Callable, *args, units: int = 1) -> None:
        """Run ``fn(*args)`` after queuing behind current CPU work.

        ``units`` sizes the work for the crash-limit check (prefix
        updates queue as one work item but count individually, matching
        the paper's updates-per-second framing of router overload).
        """
        if self.crashed:
            return
        if self.cpu is None or cost <= 0.0:
            fn(*args)
            return
        now = self.engine.now
        start = max(now, self._busy_until)
        finish = start + cost
        self._busy_until = finish
        self._queue_depth += units
        if (
            self.crash_queue_limit is not None
            and self._queue_depth > self.crash_queue_limit
        ):
            self._crash()
            return
        self.engine.schedule_at(finish, self._cpu_complete, fn, args, units)

    def _cpu_complete(self, fn: Callable, args: tuple, units: int) -> None:
        self._queue_depth = max(0, self._queue_depth - units)
        if self.crashed:
            return
        fn(*args)

    @property
    def cpu_backlog(self) -> float:
        """Seconds of queued CPU work."""
        return max(0.0, self._busy_until - self.engine.now)

    # ------------------------------------------------------------------
    # crash / reboot
    # ------------------------------------------------------------------

    def _crash(self) -> None:
        """Total failure: unresponsive until reboot (the paper's
        definition of *crash*)."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self.batcher.stop()
        self._queue_depth = 0
        self._busy_until = self.engine.now
        # Sessions die silently; peers find out via their hold timers.
        for session in self.sessions.values():
            if session.fsm.is_established:
                session.fsm.drop_count += 1
            session.fsm.reset()
        self.engine.schedule(self.reboot_delay, self._reboot)

    def _reboot(self) -> None:
        self.crashed = False
        # Rebuild from scratch: only originated routes survive.
        self.loc_rib = LocRib()
        self.adj_out = AdjRibOut()
        for prefix, attrs in self._origins.items():
            self.loc_rib.apply_announce(LOCAL_PEER, prefix, attrs)
        self.batcher.start()
        for peer_id, session in self.sessions.items():
            self.sessions[peer_id] = PeeringSession(
                local_asn=self.asn,
                peer_asn=session.peer_asn,
                hold_time=self.hold_time,
                local_id=self.router_id,
            )
            if self.links[peer_id].is_up:
                self.start_session(peer_id)

    # ------------------------------------------------------------------
    # link and session events
    # ------------------------------------------------------------------

    def _on_link_down(self, peer_id: int) -> None:
        session = self.sessions[peer_id]
        self._run_actions(peer_id, session.on_transport_failure(self.engine.now))

    def _on_link_up(self, peer_id: int) -> None:
        if self.crashed:
            return
        # Re-peer shortly after carrier returns.
        delay = self.restart_delay * self.rng.uniform(0.5, 1.5)
        self.engine.schedule(delay, self.start_session, peer_id)

    def _schedule_session_wakeup(self, peer_id: int) -> None:
        session = self.sessions[peer_id]
        deadline = session.next_deadline()
        if deadline is None or deadline <= self.engine.now:
            return
        armed = self._wakeups.get(peer_id)
        if armed is not None and self.engine.now < armed <= deadline:
            return  # an earlier-or-equal wakeup is already pending
        self._wakeups[peer_id] = deadline
        self.engine.schedule_at(deadline, self._session_wakeup, peer_id)

    def _session_wakeup(self, peer_id: int) -> None:
        if self._wakeups.get(peer_id) == self.engine.now:
            del self._wakeups[peer_id]
        if self.crashed:
            return
        session = self.sessions[peer_id]
        actions = session.poll(self.engine.now)
        self._run_actions(peer_id, actions)
        self._schedule_session_wakeup(peer_id)

    def _run_actions(self, peer_id: int, actions: List[SessionAction]) -> None:
        for action in actions:
            if action.kind is ActionKind.SEND_OPEN:
                self._transmit(peer_id, action.message, cost=0.0)
            elif action.kind is ActionKind.SEND_KEEPALIVE:
                self.keepalives_sent += 1
                if self.keepalive_priority:
                    # Keepalives bypass the CPU queue entirely, so they
                    # persist under update storms (the vendors' fix).
                    self._transmit(peer_id, action.message)
                else:
                    cost = self.cpu.per_keepalive if self.cpu else 0.0
                    self._cpu_submit(
                        cost, self._transmit, peer_id, action.message, 0.0
                    )
            elif action.kind is ActionKind.SEND_NOTIFICATION:
                self._transmit(peer_id, action.message, cost=0.0)
            elif action.kind is ActionKind.SESSION_UP:
                self._on_session_up(peer_id)
            elif action.kind is ActionKind.SESSION_DOWN:
                self._on_session_down(peer_id)
            elif action.kind is ActionKind.RESTART:
                if self.links[peer_id].is_up:
                    delay = self.restart_delay * self.rng.uniform(0.5, 1.5)
                    self.engine.schedule(delay, self.start_session, peer_id)

    def _on_session_up(self, peer_id: int) -> None:
        """Session established: send the full-table dump."""
        routes = self.loc_rib.routes()
        dump_cost = (
            self.cpu.per_dump_route * len(routes) if self.cpu else 0.0
        )
        self._cpu_submit(dump_cost, self._send_table_dump, peer_id)

    def _send_table_dump(self, peer_id: int) -> None:
        session = self.sessions.get(peer_id)
        if session is None or not session.is_established:
            return
        dump_prefixes = [
            route.prefix
            for route in self.loc_rib.routes()
            if route.peer != peer_id
        ]
        dump_prefixes.extend(self._aggregates)
        for prefix in dump_prefixes:
            exported = self._export(peer_id, prefix)
            if exported is None:
                continue
            self._send_update(
                peer_id,
                UpdateMessage(announced=(prefix,), attributes=exported),
            )
            if not self.stateless_bgp:
                self.adj_out.record_announce(peer_id, prefix, exported)

    def _on_session_down(self, peer_id: int) -> None:
        """Session lost: drop everything learned from the peer."""
        changes = self.loc_rib.drop_peer(peer_id)
        self.adj_out.drop_peer(peer_id)
        for change in changes:
            self._note_change(change)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def _on_link_message(self, sender_id: int, message: object) -> None:
        if self.crashed:
            return
        if isinstance(message, UpdateMessage):
            cost = (
                self.cpu.per_update * max(1, message.prefix_update_count)
                if self.cpu
                else 0.0
            )
            self._cpu_submit(
                cost,
                self._process_update,
                sender_id,
                message,
                units=max(1, message.prefix_update_count),
            )
        elif isinstance(message, KeepAliveMessage):
            cost = self.cpu.per_keepalive if self.cpu else 0.0
            self._cpu_submit(cost, self._process_keepalive, sender_id)
        elif isinstance(message, OpenMessage):
            self._process_open(sender_id, message)
        elif isinstance(message, NotificationMessage):
            self._process_notification(sender_id, message)

    def _process_open(self, sender_id: int, message: OpenMessage) -> None:
        session = self.sessions.get(sender_id)
        if session is None:
            return
        if session.fsm.state.name == "IDLE":
            # Passive open: the peer initiated; come up ourselves,
            # including transmitting our own OPEN back.
            self._run_actions(sender_id, session.start(self.engine.now))
        self._run_actions(sender_id, session.on_open(self.engine.now, message))
        self._schedule_session_wakeup(sender_id)

    def _process_keepalive(self, sender_id: int) -> None:
        session = self.sessions.get(sender_id)
        if session is None or session.fsm.state.name == "IDLE":
            return
        self._run_actions(sender_id, session.on_keepalive(self.engine.now))
        # Establishment arms the keepalive timer, which is sooner than
        # the hold deadline the current wakeup targets.
        self._schedule_session_wakeup(sender_id)

    def _process_notification(
        self, sender_id: int, message: NotificationMessage
    ) -> None:
        session = self.sessions.get(sender_id)
        if session is None or session.fsm.state.name == "IDLE":
            return
        self._run_actions(
            sender_id, session.on_notification(self.engine.now, message)
        )

    def _process_update(self, sender_id: int, message: UpdateMessage) -> None:
        session = self.sessions.get(sender_id)
        if session is None or not session.is_established:
            return
        session.on_update(self.engine.now, message)
        self.updates_received += message.prefix_update_count
        now = self.engine.now
        for prefix in message.withdrawn:
            if self.damper is not None:
                self.damper.on_withdrawal(prefix, sender_id, now)
            change = self.loc_rib.apply_withdraw(sender_id, prefix)
            self._note_change(change)
        if message.announced:
            attrs = message.attributes
            # Loop detection: drop updates carrying our own AS.
            if attrs.as_path.contains_loop(self.asn):
                return
            for prefix in message.announced:
                self._receive_announcement(sender_id, prefix, attrs)

    def _receive_announcement(
        self, sender_id: int, prefix: Prefix, attrs: PathAttributes
    ) -> None:
        now = self.engine.now
        accepted = attrs
        if self.import_policy is not None:
            cost = (
                self.cpu.per_policy_term * len(self.import_policy)
                if self.cpu
                else 0.0
            )
            # Policy cost is charged but evaluation is immediate —
            # splitting it further adds nothing the analyses see.
            self._busy_until = max(self._busy_until, now) + cost
            evaluated = self.import_policy.evaluate(prefix, attrs)
            if evaluated is None:
                # Denied: equivalent to a withdrawal of any prior route.
                change = self.loc_rib.apply_withdraw(sender_id, prefix)
                self._note_change(change)
                return
            accepted = evaluated
        if self.damper is not None:
            previous = self.loc_rib.adj_in.routes_from(sender_id).get(prefix)
            if previous is not None and previous != accepted:
                self.damper.on_attribute_change(prefix, sender_id, now)
            suppressed = self.damper.on_readvertisement(prefix, sender_id, now)
            if suppressed:
                # Hold the route aside; reinstated when reusable.
                self._suppressed[(prefix, sender_id)] = accepted
                self._ensure_reuse_poll()
                return
        change = self.loc_rib.apply_announce(sender_id, prefix, accepted)
        self._note_change(change)

    # -- damping reuse polling --------------------------------------------

    def _ensure_reuse_poll(self) -> None:
        if not self._reuse_poll_armed:
            self._reuse_poll_armed = True
            self.engine.schedule(10.0, self._reuse_poll)

    def _reuse_poll(self) -> None:
        self._reuse_poll_armed = False
        if self.damper is None or self.crashed:
            return
        now = self.engine.now
        for key in self.damper.reusable(now):
            held = self._suppressed.pop(key, None)
            if held is not None:
                prefix, peer = key
                change = self.loc_rib.apply_announce(peer, prefix, held)
                self._note_change(change)
        if self._suppressed:
            self._ensure_reuse_poll()

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------

    def _note_change(self, change: RibChange) -> None:
        """React to a Loc-RIB change: invalidate cache, mark dirty.

        Changes to a component of a configured aggregate stay inside
        the AS: only the aggregate's own reachability transition (last
        member gone / first member back) becomes externally visible.
        """
        if change.kind is ChangeKind.NONE:
            return
        if self.cache is not None:
            self.cache.invalidate(change.prefix)
        supernet = self._covering_aggregate(change.prefix)
        if supernet is not None:
            members = self._aggregates[supernet]
            had_members = bool(members)
            if change.kind is ChangeKind.WITHDRAW:
                members.discard(change.prefix)
            else:
                members.add(change.prefix)
            if bool(members) != had_members:
                # The aggregate's reachability flipped.
                self.batcher.mark_dirty(supernet)
            return
        self.batcher.mark_dirty(change.prefix)

    def _export(
        self, peer_id: int, prefix: Prefix
    ) -> Optional[PathAttributes]:
        """The attributes we would advertise to ``peer_id`` for the
        current best route, or None if nothing/denied."""
        if prefix in self._aggregates:
            # The aggregate is reachable while any member is.
            if not self._aggregates[prefix]:
                return None
            exported = self._aggregate_attributes(prefix)
            if self.export_policy is not None:
                exported = self.export_policy.evaluate(prefix, exported)
            return None if exported is None else interned(exported)
        if self._covering_aggregate(prefix) is not None:
            return None  # components stay inside the AS
        best = self.loc_rib.best(prefix)
        if best is None or best.peer == peer_id:
            return None
        exported = best.attributes.exported_by(
            self.asn, next_hop=self.router_id
        )
        if self.export_policy is not None:
            exported = self.export_policy.evaluate(prefix, exported)
        return None if exported is None else interned(exported)

    def _flush(self, dirty: Set[Prefix]) -> None:
        """MRAI expiry: advertise current state of dirty prefixes."""
        if self.crashed:
            return
        for peer_id, session in self.sessions.items():
            if not session.is_established:
                continue
            announce_groups: Dict[PathAttributes, List[Prefix]] = {}
            withdrawals: List[Prefix] = []
            # Sorted so the NLRI order inside emitted UPDATEs is
            # canonical rather than set-iteration order (DET003).
            for prefix in sorted(dirty):
                exported = self._export(peer_id, prefix)
                if exported is None:
                    if self.stateless_bgp:
                        # Withdraw everywhere, advertised or not.
                        withdrawals.append(prefix)
                    elif self.adj_out.record_withdraw(peer_id, prefix):
                        withdrawals.append(prefix)
                    else:
                        self.suppressed_outputs += 1
                else:
                    if not self.stateless_bgp:
                        already = self.adj_out.advertised(peer_id, prefix)
                        if already == exported:
                            self.suppressed_outputs += 1
                            continue
                        self.adj_out.record_announce(peer_id, prefix, exported)
                    announce_groups.setdefault(exported, []).append(prefix)
            messages: List[UpdateMessage] = []
            if withdrawals:
                messages.append(UpdateMessage(withdrawn=tuple(sorted(withdrawals))))
            for attrs, prefixes in announce_groups.items():
                messages.append(
                    UpdateMessage(
                        announced=tuple(sorted(prefixes)), attributes=attrs
                    )
                )
            for message in messages:
                self._send_update(peer_id, message)

    def _send_update(self, peer_id: int, message: UpdateMessage) -> None:
        cost = (
            self.cpu.per_sent_update * max(1, message.prefix_update_count)
            if self.cpu
            else 0.0
        )
        self.updates_sent += message.prefix_update_count
        self.announcements_sent += len(message.announced)
        self.withdrawals_sent += len(message.withdrawn)
        session = self.sessions.get(peer_id)
        if session is not None:
            session.sent_updates += message.prefix_update_count
        self._cpu_submit(cost, self._transmit, peer_id, message, 0.0)

    def _transmit(self, peer_id: int, message: object, cost: float = 0.0) -> None:
        link = self.links.get(peer_id)
        if link is not None:
            link.send(self.router_id, message)

    # ------------------------------------------------------------------
    # forwarding-plane helper (route cache exercise)
    # ------------------------------------------------------------------

    def forward_packet(self, prefix: Prefix) -> Optional[int]:
        """Forward one packet toward ``prefix``; returns the next hop.

        Uses the cache if fitted (counting hits/misses); consults the
        Loc-RIB on the slow path.
        """
        def resolve(p: Prefix) -> Optional[int]:
            best = self.loc_rib.best(p)
            return best.attributes.next_hop if best else None

        if self.cache is not None:
            return self.cache.lookup(prefix, resolve)
        return resolve(prefix)


def connect(
    a: Router,
    b: Router,
    link: Optional[Link] = None,
    start: bool = True,
) -> Link:
    """Wire two routers together over ``link`` (a fresh low-latency
    :class:`Link` by default) and optionally start the session from
    ``a``'s side."""
    if link is None:
        link = Link(a.engine, delay=0.01)
    a.add_peer(b.router_id, b.asn, link)
    b.add_peer(a.router_id, a.asn, link)
    if start:
        a.start_session(b.router_id)
    return link
