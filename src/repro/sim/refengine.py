"""Reference event scheduler: the original binary-heap engine.

This is the pre-calendar-queue :class:`~repro.sim.engine.Engine`,
preserved verbatim as a *differential oracle*: one ``heappush`` and one
``heappop`` per event, handles compared by ``EventHandle.__lt__`` in
Python.  ``tests/test_engine_equivalence.py`` drives randomized
schedule/cancel/re-arm workloads through both engines and asserts
identical ``(time, seq)`` firing order; ``benchmarks/bench_sim.py``
uses it as the timing baseline and checks old-vs-new digests.

It shares :class:`~repro.sim.engine.EventHandle` (handles are created
with ``engine=None`` so cancellation skips the calendar queue's
bookkeeping) and implements the same public surface — ``schedule``,
``schedule_at``, ``reschedule``, ``step``, ``run``, ``run_until``,
``pending``, ``next_event_time`` — so any scenario accepting an engine
instance runs unmodified on either.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from .engine import EventHandle, SimulationError

__all__ = ["ReferenceEngine"]


class ReferenceEngine:
    """The original heap-based event queue and simulation clock."""

    __slots__ = ("_now", "_queue", "_seq", "events_processed")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def reschedule(self, handle: EventHandle, time: float) -> EventHandle:
        """Same contract as :meth:`Engine.reschedule`.  Handles here
        carry no engine backref, so the reuse fast path never triggers
        and every re-arm allocates — exactly the baseline behavior the
        calendar queue is measured against."""
        if handle.fired and not handle.cancelled and handle.engine is self:
            if time < self._now:
                raise SimulationError(
                    f"cannot schedule at {time} before now ({self._now})"
                )
            handle.fired = False
            handle.time = time
            handle.seq = next(self._seq)
            heapq.heappush(self._queue, handle)
            return handle
        return self.schedule_at(time, handle.callback, *handle.args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending handle — the :class:`EventScheduler`
        spelling of ``handle.cancel()`` (no-op once fired or already
        cancelled)."""
        handle.cancel()

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Process the next pending event; False if the queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            handle.fired = True
            self._now = handle.time
            handle.callback(*handle.args)
            self.events_processed += 1
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``; advance the clock to
        ``end_time``.  Returns the number of events processed."""
        processed = 0
        while self._queue and (max_events is None or processed < max_events):
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > end_time:
                break
            self.step()
            processed += 1
        if self._now < end_time:
            self._now = end_time
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``)."""
        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed

    @property
    def pending(self) -> int:
        """Events still queued (excluding cancelled placeholders)."""
        return sum(1 for h in self._queue if not h.cancelled)

    def next_event_time(self) -> Optional[float]:
        """When the next live event fires, or None.

        O(1) amortized: peeks the heap head, lazily discarding
        cancelled entries (each cancelled event is popped once ever).
        """
        queue = self._queue
        while queue:
            head = queue[0]
            if head.cancelled:
                heapq.heappop(queue)
                continue
            return head.time
        return None
