"""Forwarding-plane traffic: instability's effect on packet loss.

Section 3's mechanism: route-caching routers forward on a fast path as
long as the interface card's cache holds the destination; "under
sustained levels of routing instability, the cache undergoes frequent
updates and the probability of a packet encountering a cache miss
increases.  A large number of cache misses results in increased load
on the CPU, increased switching latency and the 'dropping', or loss of
packets."

:class:`ForwardingWorkload` sends a Poisson packet stream through a
router toward a destination set and accounts for exactly that chain:

- cache hit → fast-path delivery;
- cache miss → slow-path RIB lookup, charged to the router CPU; if the
  CPU backlog exceeds ``drop_backlog`` the packet is dropped (input
  queue overflow);
- no route → loss (the destination is currently withdrawn).

The cache-architecture ablation compares a cache-based router against
a "new generation" full-table router (no cache ⇒ every lookup is a
RIB lookup at line rate, no churn-induced misses) under identical
instability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..net.prefix import Prefix
from .engine import Engine
from .router import Router

__all__ = ["TrafficStats", "ForwardingWorkload"]


@dataclass(slots=True)
class TrafficStats:
    """Outcome counters for a forwarding workload."""

    sent: int = 0
    delivered_fast: int = 0     #: cache hit
    delivered_slow: int = 0     #: cache miss, CPU had headroom
    dropped_no_route: int = 0   #: destination withdrawn
    dropped_overload: int = 0   #: CPU backlog exceeded the drop limit

    @property
    def delivered(self) -> int:
        return self.delivered_fast + self.delivered_slow

    @property
    def loss_rate(self) -> float:
        return (
            (self.dropped_no_route + self.dropped_overload) / self.sent
            if self.sent
            else 0.0
        )

    @property
    def miss_rate(self) -> float:
        lookups = self.delivered_fast + self.delivered_slow + self.dropped_overload
        return (
            (self.delivered_slow + self.dropped_overload) / lookups
            if lookups
            else 0.0
        )


class ForwardingWorkload:
    """A Poisson packet stream through one router (see module doc)."""

    __slots__ = (
        "engine",
        "router",
        "destinations",
        "rate",
        "slow_path_cost",
        "drop_backlog",
        "rng",
        "stats",
        "_running",
    )

    def __init__(
        self,
        engine: Engine,
        router: Router,
        destinations: Sequence[Prefix],
        rate: float = 100.0,
        slow_path_cost: float = 0.0005,
        drop_backlog: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not destinations:
            raise ValueError("need at least one destination")
        self.engine = engine
        self.router = router
        self.destinations = list(destinations)
        self.rate = rate
        self.slow_path_cost = slow_path_cost
        self.drop_backlog = drop_backlog
        self.rng = rng or random.Random(0)
        self.stats = TrafficStats()
        self._running = False

    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        self.engine.schedule(
            self.rng.expovariate(self.rate), self._packet
        )

    def _packet(self) -> None:
        if not self._running:
            return
        self._schedule_next()
        if self.router.crashed:
            self.stats.sent += 1
            self.stats.dropped_overload += 1
            return
        self.stats.sent += 1
        destination = self.rng.choice(self.destinations)
        cache = self.router.cache
        if cache is not None and destination in cache.entries:
            cache.hits += 1
            self.stats.delivered_fast += 1
            return
        # Slow path: the lookup competes with update processing for
        # the CPU.  A saturated CPU means the input queue overflows.
        if (
            self.router.cpu is not None
            and self.router.cpu_backlog > self.drop_backlog
        ):
            if cache is not None:
                cache.misses += 1
            self.stats.dropped_overload += 1
            return
        best = self.router.loc_rib.best(destination)
        if cache is not None:
            cache.misses += 1
        if best is None:
            self.stats.dropped_no_route += 1
            return
        if cache is not None:
            if len(cache.entries) >= cache.capacity:
                cache.entries.pop(next(iter(cache.entries)))
            cache.entries[destination] = best.attributes.next_hop
        if self.router.cpu is not None:
            # Charge the slow-path lookup to the shared CPU.
            self.router._cpu_submit(self.slow_path_cost, lambda: None)
        self.stats.delivered_slow += 1
