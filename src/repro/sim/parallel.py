"""Parallel multi-exchange simulation: one engine per partition,
conservative lookahead, deterministic cross-partition ordering.

The driver runs the :mod:`repro.sim.partition` scenario as a
conservative (CMB-style) parallel discrete-event simulation:

- Each worker process owns a shard of exchange partitions, each built
  on its own :class:`~repro.sim.engine.Engine` (partition construction
  is deterministic in isolation, so workers build their own worlds
  from the config — nothing is pickled but primitives).
- Time advances in barrier-synchronous windows.  The safe horizon is
  ``min over partitions of (next_send_bound) + lookahead`` where the
  lookahead is the minimum inter-exchange latency
  (:func:`repro.sim.partition.min_lookahead`): no partition can be
  influenced by another sooner than that.  Because a partition's sends
  happen only at its pre-derived home-flap instants, the bound is
  *exact*, and windows jump between sparse flaps instead of crawling
  in fixed latency-sized steps (the null-message optimization).
- Cross messages collected at a barrier are routed to their target
  shard at the start of the next window and injected in canonical
  ``(delivery_time, src_exchange, src_seq)`` order, so the injected
  event order is independent of worker count and scheduling noise.
  Conservative windowing guarantees every delivery time lies at or
  beyond the next window start — nothing is ever injected late.
- The finish barrier returns per-partition domain digests through a
  checksum-verified payload (the campaign layer's handoff discipline:
  the parent recomputes the sha256 before trusting worker results).

``workers <= 1`` runs every partition in-process through the same
window loop — the differential tests drive that path against a single
:class:`~repro.sim.refengine.ReferenceEngine` run as the oracle, and
the multi-process path must match it bit-for-bit.

The driver itself implements :class:`~repro.sim.scheduler.EventScheduler`:
``schedule``/``schedule_at``/``reschedule``/``cancel`` manage
*host-side* events on a controller engine whose clock is the global
window clock (useful for progress sampling at simulated instants);
``run``/``run_until``/``step`` advance the partitioned world.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .engine import Engine, EventHandle, SimulationError
from .partition import (
    CrossMessage,
    ExchangeDayConfig,
    ExchangePartition,
    OutboxChannel,
    combined_digest,
    min_lookahead,
    partition_digest,
)

__all__ = [
    "ParallelDriver",
    "ParallelResult",
    "ParallelSimError",
    "TRANSFERABLE_TYPES",
]

#: Process-boundary contract (CON001): the project types allowed to
#: cross the worker pipes — cross-exchange messages (window barriers)
#: and the day config each worker rebuilds its shard from.  Everything
#: else on the wire is primitives and containers of these.
TRANSFERABLE_TYPES = (CrossMessage, ExchangeDayConfig)


class ParallelSimError(RuntimeError):
    """A worker failed or returned a corrupt payload."""


@dataclass(slots=True, frozen=True)
class ParallelResult:
    """What a partitioned run produced."""

    #: exchange index -> domain digest (see partition_digest).
    digests: Dict[int, str]
    #: Events processed across all partition engines (host controller
    #: events excluded) — must equal the single-engine oracle's count.
    events: int
    windows: int
    workers: int
    lookahead: float

    @property
    def digest(self) -> str:
        """Combined run digest over per-exchange digests in exchange
        order (same computation as the single-engine oracle's)."""
        return combined_digest(self.digests)


def _payload_checksum(payload: Any) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()


class _Shard:
    """One worker's world: a private engine running a set of
    partitions, with an outbox channel for cross-exchange sends."""

    __slots__ = ("engine", "channel", "partitions", "by_index")

    def __init__(
        self,
        config: ExchangeDayConfig,
        indices: Tuple[int, ...],
        engine_cls: Callable[[], Any],
    ) -> None:
        self.engine = engine_cls()
        self.channel = OutboxChannel()
        self.partitions: List[ExchangePartition] = []
        self.by_index: Dict[int, ExchangePartition] = {}
        for index in indices:
            partition = ExchangePartition(config, index, self.engine)
            partition.build(self.channel)
            self.partitions.append(partition)
            self.by_index[index] = partition

    def advance(
        self, window_end: float, messages: List[CrossMessage]
    ) -> Tuple[List[CrossMessage], float]:
        """Inject pre-sorted cross messages, run the window, and report
        (outgoing messages, exact next-send lower bound)."""
        engine = self.engine
        for message in messages:
            engine.schedule_at(
                message.delivery_time,
                self.by_index[message.dst_exchange].apply_remote_flap,
                message.provider,
                message.prefix_index,
                message.down_for,
            )
        engine.run_until(window_end)
        bound = min(
            partition.next_send_bound(window_end)
            for partition in self.partitions
        )
        return self.channel.drain(), bound

    def finish(self) -> Tuple[Dict[int, str], int]:
        digests = {
            partition.index: partition_digest(partition)
            for partition in self.partitions
        }
        return digests, self.engine.events_processed


def _worker_main(conn, config, indices, engine_cls) -> None:
    """Worker process loop: build the shard, serve advance/finish."""
    try:
        shard = _Shard(config, indices, engine_cls)
        conn.send(("ready", None))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "advance":
                _, window_end, messages = command
                outgoing, bound = shard.advance(window_end, messages)
                conn.send(("ok", (outgoing, bound)))
            elif op == "finish":
                payload = shard.finish()
                conn.send(("done", (payload, _payload_checksum(payload))))
                return
            else:
                conn.send(("error", f"unknown command {op!r}"))
                return
    except EOFError:
        return
    except Exception as exc:  # pragma: no cover - transported to parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        conn.close()


class _LocalPort:
    """In-process stand-in for a worker pipe (workers <= 1): the same
    advance/finish protocol, no processes, no pickling."""

    __slots__ = ("shard", "_reply")

    def __init__(self, config, indices, engine_cls) -> None:
        self.shard = _Shard(config, indices, engine_cls)
        self._reply = None

    def request_advance(self, window_end, messages) -> None:
        self._reply = ("ok", self.shard.advance(window_end, messages))

    def request_finish(self) -> None:
        payload = self.shard.finish()
        self._reply = ("done", (payload, _payload_checksum(payload)))

    def collect(self):
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        self._reply = None


class _RemotePort:
    """A worker process behind a duplex pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, context, config, indices, engine_cls) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, config, indices, engine_cls),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        status, _ = self._recv()
        if status != "ready":
            raise ParallelSimError(f"worker failed to start: {status}")

    def _recv(self):
        try:
            return self.conn.recv()
        except EOFError as exc:
            raise ParallelSimError("worker died mid-protocol") from exc

    def _send(self, command) -> None:
        try:
            self.conn.send(command)
        except (OSError, ValueError) as exc:
            raise ParallelSimError("worker pipe is gone") from exc

    def request_advance(self, window_end, messages) -> None:
        self._send(("advance", window_end, messages))

    def request_finish(self) -> None:
        self._send(("finish",))

    def collect(self):
        reply = self._recv()
        if reply[0] == "error":
            raise ParallelSimError(f"worker error: {reply[1]}")
        return reply

    def close(self) -> None:
        self.conn.close()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5.0)


def _mp_context():
    """Prefer fork (cheap, inherits the built config's code pages);
    fall back to spawn elsewhere — the campaign runner's choice."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ParallelDriver:
    """Conservative-lookahead parallel driver for the multi-exchange
    day (see module docstring).  Implements
    :class:`~repro.sim.scheduler.EventScheduler` over the global window
    clock."""

    __slots__ = (
        "config",
        "workers",
        "lookahead",
        "windows",
        "_engine_cls",
        "_controller",
        "_ports",
        "_routing",
        "_bounds",
        "_pending",
        "_result",
        "_closed",
    )

    def __init__(
        self,
        config: ExchangeDayConfig,
        workers: Optional[int] = None,
        engine_cls: Callable[[], Any] = Engine,
    ) -> None:
        if config.exchanges < 2:
            raise SimulationError(
                "partitioned simulation needs at least 2 exchanges"
            )
        self.config = config
        requested = workers if workers is not None else 1
        self.workers = max(1, min(requested, config.exchanges))
        self.lookahead = min_lookahead(config.exchanges)
        self.windows = 0
        self._engine_cls = engine_cls
        #: Host-side scheduler; its clock is the global window clock.
        self._controller = Engine()
        #: Round-robin partition -> shard assignment (deterministic,
        #: independent of live core count).
        assignment: List[List[int]] = [[] for _ in range(self.workers)]
        for index in range(config.exchanges):
            assignment[index % self.workers].append(index)
        self._routing = {
            index: shard
            for shard, indices in enumerate(assignment)
            for index in indices
        }
        if self.workers <= 1:
            self._ports = [
                _LocalPort(config, tuple(assignment[0]), engine_cls)
            ]
        else:
            context = _mp_context()
            self._ports = [
                _RemotePort(context, config, tuple(indices), engine_cls)
                for indices in assignment
            ]
        #: Per-shard exact next-send lower bounds (unknown until the
        #: first barrier; the first window falls back to now + L).
        self._bounds: List[float] = [0.0] * len(self._ports)
        #: Cross messages collected at the last barrier, awaiting
        #: injection, already in canonical order.
        self._pending: List[CrossMessage] = []
        self._result: Optional[ParallelResult] = None
        self._closed = False

    # -- EventScheduler surface (host-side controller) ----------------------

    @property
    def now(self) -> float:
        """Global simulated time (the last window barrier)."""
        return self._controller.now

    @property
    def pending(self) -> int:
        """Host-side events still queued on the controller."""
        return self._controller.pending

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule a host-side callback ``delay`` seconds from the
        window clock; it fires at the first barrier at/after its time."""
        return self._controller.schedule(delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> EventHandle:
        return self._controller.schedule_at(time, callback, *args)

    def reschedule(self, handle: EventHandle, time: float) -> EventHandle:
        return self._controller.reschedule(handle, time)

    def cancel(self, handle: EventHandle) -> None:
        self._controller.cancel(handle)

    def next_event_time(self) -> Optional[float]:
        return self._controller.next_event_time()

    def step(self) -> bool:
        """Advance one window; False once the day is complete."""
        end = self.config.end_time
        if self.now >= end:
            return False
        self._advance_window(end)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run the configured day to completion.  Returns the number
        of host-side controller events fired (partition event totals
        are reported by :meth:`finish`)."""
        return self.run_until(self.config.end_time, max_events)

    def run_until(
        self, end_time: float, max_events: Optional[int] = None
    ) -> int:
        """Advance the partitioned world (and the window clock) to
        ``end_time`` in conservative windows."""
        if self._result is not None:
            raise SimulationError("driver already finished")
        fired = 0
        limit = float("inf") if max_events is None else max_events
        while self.now < end_time and fired < limit:
            fired += self._advance_window(end_time)
        return fired

    # -- the window loop ----------------------------------------------------

    def _advance_window(self, end_time: float) -> int:
        """One barrier-synchronous window: route pending messages,
        advance every shard to the safe horizon, collect sends and
        bounds, then fire host events up to the new clock."""
        now = self._controller.now
        horizon = min(self._bounds) + self.lookahead
        window_end = min(end_time, max(horizon, now + self.lookahead))
        outgoing: List[List[CrossMessage]] = [
            [] for _ in range(len(self._ports))
        ]
        for message in self._pending:
            outgoing[self._routing[message.dst_exchange]].append(message)
        self._pending = []
        for port, messages in zip(self._ports, outgoing):
            port.request_advance(window_end, messages)
        collected: List[CrossMessage] = []
        for shard, port in enumerate(self._ports):
            _, (sent, bound) = port.collect()
            collected.extend(sent)
            self._bounds[shard] = bound
        collected.sort(key=lambda m: m.sort_key)
        self._pending = collected
        self.windows += 1
        return self._controller.run_until(window_end)

    # -- completion ---------------------------------------------------------

    def finish(self) -> ParallelResult:
        """Collect per-partition digests and event totals (verifying
        the payload checksums), shut the workers down, and return the
        combined result."""
        if self._result is not None:
            return self._result
        digests: Dict[int, str] = {}
        events = 0
        for port in self._ports:
            port.request_finish()
        for port in self._ports:
            status, (payload, checksum) = port.collect()
            if status != "done":
                raise ParallelSimError(f"unexpected finish reply {status}")
            if _payload_checksum(payload) != checksum:
                raise ParallelSimError(
                    "finish payload failed checksum verification"
                )
            shard_digests, shard_events = payload
            digests.update(shard_digests)
            events += shard_events
        self._result = ParallelResult(
            digests=digests,
            events=events,
            windows=self.windows,
            workers=self.workers,
            lookahead=self.lookahead,
        )
        self.close()
        return self._result

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for port in self._ports:
            port.close()

    def __enter__(self) -> "ParallelDriver":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
