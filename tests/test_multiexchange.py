"""Tests for wire-mode links and the multi-exchange scenario."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import KeepAliveMessage, UpdateMessage
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.link import Link
from repro.sim.router import Router, connect
from repro.topology.multiexchange import (
    BackboneProvider,
    MultiExchangeScenario,
)

P = Prefix.parse


class TestWireLinks:
    def test_messages_survive_wire_encoding(self):
        engine = Engine()
        received = []
        link = Link(engine, wire=True)
        link.attach(1, lambda s, m: received.append(m))
        link.attach(2, lambda s, m: received.append(m))
        update = UpdateMessage(
            announced=(P("10.0.0.0/8"),),
            attributes=PathAttributes(as_path=AsPath((701,)), next_hop=5),
        )
        link.send(1, update)
        link.send(2, KeepAliveMessage())
        engine.run()
        assert update in received
        assert KeepAliveMessage() in received
        assert link.bytes_carried > 0

    def test_full_session_over_wire_links(self):
        """Routers converge identically over byte-encoded links."""
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
        link = Link(engine, wire=True)
        connect(a, b, link=link)
        engine.run_until(30.0)
        a.originate(P("10.0.0.0/8"))
        engine.run_until(90.0)
        best = b.loc_rib.best(P("10.0.0.0/8"))
        assert best is not None
        assert tuple(best.attributes.as_path) == (100,)
        assert link.bytes_carried > 100

    def test_in_flight_compaction(self):
        engine = Engine()
        link = Link(engine, delay=0.001)
        link.attach(1, lambda s, m: None)
        link.attach(2, lambda s, m: None)
        for i in range(600):
            link.send(1, KeepAliveMessage())
            engine.run()  # deliver immediately
        # Compaction keeps the in-flight list bounded.
        assert len(link._in_flight) <= 257


@pytest.fixture(scope="module")
def scenario():
    s = MultiExchangeScenario(seed=3)
    s.settle()
    s.run_with_faults(3600.0)
    return s


class TestMultiExchange:
    def test_three_exchanges_instrumented(self, scenario):
        assert set(scenario.exchanges) == {"Mae-East", "AADS", "PacBell"}
        for sink in scenario.sinks.values():
            assert len(sink) > 0

    def test_mae_east_hosts_every_provider(self, scenario):
        for provider in scenario.providers:
            assert "Mae-East" in provider.routers

    def test_shared_faults_visible_at_multiple_exchanges(self, scenario):
        """A provider's flap shows up wherever it peers."""
        provider = next(
            p for p in scenario.providers if len(p.routers) >= 2
        )
        touched = {
            name
            for name, sink in scenario.sinks.items()
            if name in provider.routers
            and any(r.peer_asn == provider.asn for r in sink)
        }
        assert len(touched) >= 2

    def test_profiles_similar_volumes_differ(self, scenario):
        assert scenario.min_pairwise_similarity() > 0.8
        volumes = [len(s) for s in scenario.sinks.values()]
        assert max(volumes) > min(volumes)  # attendance varies

    def test_profile_similarity_bounds(self):
        sim = MultiExchangeScenario.profile_similarity
        assert sim({"a": 1.0}, {"a": 1.0}) == pytest.approx(1.0)
        assert sim({"a": 1.0}, {"b": 1.0}) == pytest.approx(0.0)
        assert sim({}, {"a": 1.0}) == 0.0

    def test_classification_counts_match_sink(self, scenario):
        for name, sink in scenario.sinks.items():
            counts = scenario.classify_exchange(name)
            assert counts.total == len(sink)
