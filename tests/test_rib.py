"""Unit tests for the RIBs and decision process."""

import pytest

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.rib import (
    AdjRibOut,
    ChangeKind,
    LocRib,
    Route,
    best_route,
)
from repro.net.prefix import Prefix

P = Prefix.parse


def route(prefix, path, peer=1, **kwargs):
    return Route(P(prefix), PathAttributes(as_path=AsPath(path), **kwargs), peer)


class TestDecisionProcess:
    def test_empty_is_none(self):
        assert best_route([]) is None

    def test_prefers_higher_local_pref(self):
        a = route("10.0.0.0/8", (1, 2, 3), peer=1, local_pref=200)
        b = route("10.0.0.0/8", (4,), peer=2, local_pref=100)
        assert best_route([a, b]) == a

    def test_prefers_shorter_as_path(self):
        a = route("10.0.0.0/8", (1, 2, 3), peer=1)
        b = route("10.0.0.0/8", (4, 5), peer=2)
        assert best_route([a, b]) == b

    def test_prepending_deprefs_route(self):
        a = route("10.0.0.0/8", (7, 7, 7, 1), peer=1)
        b = route("10.0.0.0/8", (8, 1), peer=2)
        assert best_route([a, b]) == b

    def test_prefers_lower_origin(self):
        a = route("10.0.0.0/8", (1,), peer=1, origin=Origin.INCOMPLETE)
        b = route("10.0.0.0/8", (2,), peer=2, origin=Origin.IGP)
        assert best_route([a, b]) == b

    def test_med_compared_within_same_neighbor_as(self):
        a = route("10.0.0.0/8", (7, 1), peer=1, med=50)
        b = route("10.0.0.0/8", (7, 2), peer=2, med=10)
        assert best_route([a, b]) == b

    def test_med_ignored_across_neighbor_ases(self):
        # Different neighbor AS: MED must not decide; peer id breaks tie.
        a = route("10.0.0.0/8", (7, 1), peer=1, med=500)
        b = route("10.0.0.0/8", (8, 2), peer=2, med=1)
        assert best_route([a, b]) == a  # lower peer id wins

    def test_peer_id_is_final_tiebreak(self):
        a = route("10.0.0.0/8", (7, 1), peer=9)
        b = route("10.0.0.0/8", (8, 1), peer=3)
        assert best_route([a, b]) == b

    def test_default_local_pref_is_100(self):
        a = route("10.0.0.0/8", (1, 2), peer=1, local_pref=None)
        b = route("10.0.0.0/8", (3,), peer=2, local_pref=99)
        # a has implicit 100 > 99 despite longer path.
        assert best_route([a, b]) == a


class TestLocRib:
    def test_first_announce(self):
        rib = LocRib()
        change = rib.apply_announce(
            1, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((7,)))
        )
        assert change.kind is ChangeKind.ANNOUNCE
        assert change.previous is None
        assert len(rib) == 1

    def test_duplicate_announce_is_none_change(self):
        rib = LocRib()
        attrs = PathAttributes(as_path=AsPath((7,)), next_hop=1)
        rib.apply_announce(1, P("10.0.0.0/8"), attrs)
        change = rib.apply_announce(1, P("10.0.0.0/8"), attrs)
        assert change.kind is ChangeKind.NONE

    def test_better_route_replaces(self):
        rib = LocRib()
        rib.apply_announce(
            1, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((7, 8, 9)))
        )
        change = rib.apply_announce(
            2, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((5,)))
        )
        assert change.kind is ChangeKind.ANNOUNCE
        assert change.best.peer == 2
        assert change.previous.peer == 1

    def test_worse_route_no_change(self):
        rib = LocRib()
        rib.apply_announce(
            1, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((5,)))
        )
        change = rib.apply_announce(
            2, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((7, 8, 9)))
        )
        assert change.kind is ChangeKind.NONE
        assert rib.best(P("10.0.0.0/8")).peer == 1

    def test_withdraw_best_falls_back(self):
        rib = LocRib()
        rib.apply_announce(1, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((5,))))
        rib.apply_announce(
            2, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((7, 8)))
        )
        change = rib.apply_withdraw(1, P("10.0.0.0/8"))
        assert change.kind is ChangeKind.ANNOUNCE
        assert change.best.peer == 2

    def test_withdraw_last_route(self):
        rib = LocRib()
        rib.apply_announce(1, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((5,))))
        change = rib.apply_withdraw(1, P("10.0.0.0/8"))
        assert change.kind is ChangeKind.WITHDRAW
        assert len(rib) == 0

    def test_spurious_withdraw_is_none(self):
        """The WWDup precondition: withdrawing a never-announced route."""
        rib = LocRib()
        change = rib.apply_withdraw(1, P("10.0.0.0/8"))
        assert change.kind is ChangeKind.NONE

    def test_withdraw_nonbest_is_none(self):
        rib = LocRib()
        rib.apply_announce(1, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((5,))))
        rib.apply_announce(
            2, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((7, 8)))
        )
        change = rib.apply_withdraw(2, P("10.0.0.0/8"))
        assert change.kind is ChangeKind.NONE
        assert rib.best(P("10.0.0.0/8")).peer == 1

    def test_drop_peer_withdraws_its_routes(self):
        rib = LocRib()
        rib.apply_announce(1, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((5,))))
        rib.apply_announce(1, P("11.0.0.0/8"), PathAttributes(as_path=AsPath((5,))))
        rib.apply_announce(
            2, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((7, 8)))
        )
        changes = rib.drop_peer(1)
        kinds = {c.prefix: c.kind for c in changes}
        assert kinds[P("10.0.0.0/8")] is ChangeKind.ANNOUNCE  # falls back to 2
        assert kinds[P("11.0.0.0/8")] is ChangeKind.WITHDRAW
        assert len(rib) == 1

    def test_policy_only_change_is_announce(self):
        """A MED-only change re-announces (policy fluctuation), visible
        as an update but with an unchanged forwarding tuple."""
        rib = LocRib()
        base = PathAttributes(as_path=AsPath((7,)), next_hop=1, med=10)
        rib.apply_announce(1, P("10.0.0.0/8"), base)
        change = rib.apply_announce(
            1, P("10.0.0.0/8"), PathAttributes(as_path=AsPath((7,)), next_hop=1, med=99)
        )
        assert change.kind is ChangeKind.ANNOUNCE
        assert change.best.attributes.same_forwarding(base)


class TestAdjRibOut:
    def test_tracks_advertisements(self):
        out = AdjRibOut()
        attrs = PathAttributes(as_path=AsPath((7,)))
        assert out.advertised(1, P("10.0.0.0/8")) is None
        out.record_announce(1, P("10.0.0.0/8"), attrs)
        assert out.advertised(1, P("10.0.0.0/8")) == attrs
        assert out.record_withdraw(1, P("10.0.0.0/8"))
        assert out.advertised(1, P("10.0.0.0/8")) is None

    def test_withdraw_unadvertised_returns_false(self):
        out = AdjRibOut()
        assert not out.record_withdraw(1, P("10.0.0.0/8"))

    def test_drop_peer(self):
        out = AdjRibOut()
        out.record_announce(1, P("10.0.0.0/8"), PathAttributes())
        out.drop_peer(1)
        assert out.prefixes_to(1) == []

    def test_len_counts_all_peers(self):
        out = AdjRibOut()
        out.record_announce(1, P("10.0.0.0/8"), PathAttributes())
        out.record_announce(2, P("10.0.0.0/8"), PathAttributes())
        assert len(out) == 2


class TestRouteForwardingTuple:
    def test_matches_paper_definition(self):
        r = route("192.42.113.0/24", (701, 1239), peer=5, next_hop=0x0A000001)
        prefix, next_hop, as_path = r.forwarding_tuple
        assert prefix == P("192.42.113.0/24")
        assert next_hop == 0x0A000001
        assert as_path == (701, 1239)
