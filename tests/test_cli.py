"""Tests for the command-line interface."""

import io
import sys

import pytest

from repro.__main__ import main


class TestListCommand:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure10" in out
        assert "ablation-sync" in out


class TestRunCommand:
    def test_runs_fast_experiment(self, capsys):
        assert main(["run", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "Mae-East" in out
        assert "OK" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "figure99"])


class TestSimulateClassify:
    def test_pipeline(self, tmp_path, capsys):
        archive = tmp_path / "exchange.mrt"
        assert main(
            ["simulate", "-o", str(archive), "--hours", "0.1"]
        ) == 0
        assert archive.exists()
        assert main(["classify", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "updates" in out
        assert "pathological" in out

    def test_classify_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["classify", str(tmp_path / "nope.mrt")])


class TestCampaignCommand:
    ARGS = [
        "campaign", "--days", "2", "--shards", "2", "--seed", "5",
        "--peers", "8", "--prefixes", "240",
    ]

    def test_runs_and_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert "pathological" in out
        assert "timer mass" in out

    def test_resume_loads_manifested_shards(self, tmp_path, capsys):
        out_dir = str(tmp_path / "camp")
        assert main(self.ARGS + ["--out", out_dir]) == 0
        first = capsys.readouterr().out
        assert "2 shard(s) run, 0 loaded" in first
        assert (tmp_path / "camp" / "campaign.json").exists()
        assert main(self.ARGS + ["--out", out_dir, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 shard(s) run, 2 loaded" in second

    def test_fine_categories_drop_the_wwdup_flood(self, capsys):
        def records(extra):
            assert main(self.ARGS + extra) == 0
            out = capsys.readouterr().out
            return int(out.split(" records", 1)[0].replace(",", ""))

        full = records([])
        fine = records(["--categories", "fine"])
        # Generation without the pathological plans is a fraction of
        # the full flood (the paper's ~99%-pathological headline).
        assert fine < full / 5

    def test_unknown_exchange_rejected(self):
        with pytest.raises(KeyError):
            main(self.ARGS + ["--exchanges", "Mae-Nowhere"])


class TestSeedOverride:
    def test_run_seed_flag_reparameterizes(self, capsys):
        assert main(["run", "figure1", "--seed", "123"]) == 0
        assert "Mae-East" in capsys.readouterr().out

    def test_experiment_config_built_only_when_seeded(self):
        import argparse

        from repro.__main__ import _experiment_config

        assert _experiment_config(argparse.Namespace(seed=None)) is None
        config = _experiment_config(argparse.Namespace(seed=42))
        assert config is not None and config.seed == 42


class TestArgumentParsing:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReportRendering:
    def test_markdown_section_structure(self):
        from repro.__main__ import _render_markdown
        from repro.core.report import ExperimentResult

        result = ExperimentResult("figure1", "test experiment")
        result.record("metric_in_range", 5, expect=(1, 10))
        result.record("metric_off", 99, expect=(1, 10))
        result.notes.append("a note")
        text = _render_markdown("figure1", result, elapsed=1.5)
        assert "## figure1" in text
        assert "| metric_in_range | 5 | 1 .. 10 | ok |" in text
        assert "**MISMATCH**" in text
        assert "*a note*" in text
        assert "bench_figure1.py" in text

    def test_report_command_writes_markdown(self, tmp_path, monkeypatch):
        """cmd_report over a stubbed registry produces a valid file."""
        import repro.__main__ as cli
        from repro.core.report import ExperimentResult

        def fake_run(name, config=None):
            result = ExperimentResult(name, "stub")
            result.record("x", 1, expect=(0, 2))
            return result

        monkeypatch.setattr(cli, "experiment_ids", lambda: ["figure1"])
        monkeypatch.setattr(cli, "run_experiment", fake_run)
        output = tmp_path / "EXP.md"
        assert cli.cmd_report(str(output)) == 0
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "## figure1" in text
