"""Unit tests for instability metrics and reporting."""

import pytest

from repro.core.classifier import classify
from repro.core.instability import (
    CategoryCounts,
    counts_by_peer,
    counts_by_prefix_as,
    detect_incidents,
    persistence,
)
from repro.core.report import ExperimentResult, Series, Table, format_number
from repro.core.taxonomy import UpdateCategory

from .test_classifier import A, W, ATTRS_B, PFX


def classified(records):
    return list(classify(records))


class TestCategoryCounts:
    def test_rollups(self):
        counts = CategoryCounts()
        counts.extend(classified([A(0), A(1), A(2, ATTRS_B), W(3), W(4)]))
        # NEW, AADUP, AADIFF, PLAIN_WITHDRAW, WWDUP
        assert counts.total == 5
        assert counts[UpdateCategory.AADUP] == 1
        assert counts.instability == 1       # the AADIFF
        assert counts.pathological == 2      # AADUP + WWDUP
        assert counts.uncategorized == 2     # NEW + PLAIN_WITHDRAW

    def test_pathological_fraction(self):
        counts = CategoryCounts()
        counts.extend(classified([W(0), W(1), W(2), W(3)]))
        assert counts.pathological_fraction == 1.0

    def test_empty_fraction_zero(self):
        assert CategoryCounts().pathological_fraction == 0.0

    def test_merged(self):
        a = CategoryCounts()
        a.extend(classified([W(0)]))
        b = CategoryCounts()
        b.extend(classified([W(0)]))
        merged = a.merged(b)
        assert merged.total == 2
        assert a.total == 1  # originals untouched

    def test_policy_changes_counted(self):
        from .test_classifier import ATTRS_A_POLICY

        counts = CategoryCounts()
        counts.extend(classified([A(0), A(1, ATTRS_A_POLICY)]))
        assert counts.policy_changes == 1

    def test_as_dict_covers_all_categories(self):
        d = CategoryCounts().as_dict()
        assert set(d) == {c.name for c in UpdateCategory}


class TestGroupings:
    def test_counts_by_peer(self):
        updates = classified(
            [A(0, peer=1, asn=701), W(1, peer=2, asn=1239), A(2, peer=1, asn=701)]
        )
        by_peer = counts_by_peer(updates)
        assert by_peer[701].total == 2
        assert by_peer[1239].total == 1

    def test_counts_by_prefix_as(self):
        updates = classified([A(0), A(1), A(2), W(3), W(4), W(5)])
        pairs = counts_by_prefix_as(updates)
        assert pairs[(PFX, 701)] == 6

    def test_counts_by_prefix_as_filtered(self):
        updates = classified([A(0), A(1), W(2), W(3)])
        wwdups = counts_by_prefix_as(updates, UpdateCategory.WWDUP)
        assert wwdups == {(PFX, 701): 1}


class TestIncidents:
    def test_no_incident_in_flat_series(self):
        assert detect_incidents([10, 12, 9, 11, 10], 600.0) == []

    def test_spike_detected(self):
        counts = [10, 11, 9, 500, 600, 10, 9]
        (incident,) = detect_incidents(counts, 600.0)
        assert incident.start == 3 * 600.0
        assert incident.end == 5 * 600.0
        assert incident.updates == 1100
        assert incident.magnitude >= 1.0

    def test_incident_at_end_closed(self):
        counts = [10, 10, 900]
        (incident,) = detect_incidents(counts, 60.0)
        assert incident.end == 3 * 60.0

    def test_threshold_orders_configurable(self):
        counts = [10, 10, 50]
        assert detect_incidents(counts, 600.0, threshold_orders=1.0) == []
        assert len(detect_incidents(counts, 600.0, threshold_orders=0.5)) == 1

    def test_empty_and_all_zero(self):
        assert detect_incidents([], 600.0) == []
        assert detect_incidents([0, 0, 0], 600.0) == []


class TestPersistence:
    def test_single_event_zero_duration(self):
        episodes = persistence(classified([W(100.0)]))
        assert episodes[(PFX, 701)] == [0.0]

    def test_burst_measured(self):
        updates = classified([A(0), A(30), A(60), A(90)])
        episodes = persistence(updates)
        assert episodes[(PFX, 701)] == [90.0]

    def test_quiet_gap_splits_episodes(self):
        updates = classified([A(0), A(60), A(10000), A(10030)])
        episodes = persistence(updates, quiet_gap=300.0)
        assert episodes[(PFX, 701)] == [60.0, 30.0]

    def test_paper_bound_under_five_minutes(self):
        """A 30s-periodic pathological burst persists < 5 minutes."""
        updates = classified([A(t) for t in range(0, 150, 30)])
        episodes = persistence(updates)
        assert all(d < 300.0 for d in episodes[(PFX, 701)])


class TestReporting:
    def test_format_number(self):
        assert format_number(1234567) == "1,234,567"
        assert format_number(0.1234) == "0.1234"
        assert format_number(3.14159) == "3.14"
        assert format_number(12345.6) == "12,346"

    def test_table_renders_aligned(self):
        table = Table("T", ["name", "count"])
        table.add_row("alpha", 5)
        table.add_row("b", 12345)
        text = table.render()
        assert "T" in text and "alpha" in text and "12,345" in text

    def test_table_rejects_wrong_arity(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_series_render(self):
        series = Series("updates")
        for i in range(100):
            series.add(i, i * 2)
        text = series.render(max_points=5)
        assert "updates" in text and "100 points" in text

    def test_experiment_result_checks(self):
        result = ExperimentResult("fig-x", "test")
        result.record("in_range", 50, expect=(10, 100))
        result.record("close_scalar", 95, expect=100)
        result.record("off_scalar", 10, expect=100)
        checks = result.all_checks()
        assert checks["in_range"] and checks["close_scalar"]
        assert not checks["off_scalar"]
        text = result.render()
        assert "MISMATCH" in text and "OK" in text

    def test_experiment_result_zero_expectation(self):
        result = ExperimentResult("x", "y")
        result.record("zero", 0, expect=0)
        assert result.check("zero")
