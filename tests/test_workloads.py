"""Tests for calibration, the diurnal model, incidents, and the
statistical trace generator."""

import math

import pytest

from repro.collector.store import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.classifier import StreamClassifier, classify
from repro.core.instability import CategoryCounts
from repro.core.taxonomy import UpdateCategory
from repro.workloads.calibration import FIGURE2_CATEGORY_MIX, PAPER
from repro.workloads.diurnal import (
    DiurnalModel,
    day_of_week,
    hour_of_day,
    is_weekend,
)
from repro.workloads.generator import (
    GeneratorTargets,
    PeerPopulation,
    TraceGenerator,
)
from repro.workloads.incidents import (
    BINS_PER_DAY,
    Incident,
    IncidentSchedule,
    default_campaign_schedule,
)


class TestCalibration:
    def test_updates_per_network_consistent(self):
        # 4.5M / 42k ≈ 107, which the paper rounds to "125 per network".
        assert 90 <= PAPER.expected_daily_updates_per_prefix() <= 150

    def test_figure2_mix_sums_to_one(self):
        assert sum(FIGURE2_CATEGORY_MIX.values()) == pytest.approx(1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER.total_prefixes = 1


class TestDiurnal:
    def setup_method(self):
        self.model = DiurnalModel()

    def test_calendar_helpers(self):
        assert hour_of_day(0.0) == 0.0
        assert hour_of_day(13.5 * SECONDS_PER_HOUR) == 13.5
        assert day_of_week(0.0) == 0  # Monday epoch
        assert day_of_week(5 * SECONDS_PER_DAY) == 5
        assert is_weekend(6 * SECONDS_PER_DAY)
        assert not is_weekend(2 * SECONDS_PER_DAY)

    def test_overnight_trough(self):
        """Midnight–6am is significantly quieter than the afternoon."""
        night = self.model.intensity(3 * SECONDS_PER_HOUR)
        afternoon = self.model.intensity(14 * SECONDS_PER_HOUR)
        assert afternoon > 3 * night

    def test_noon_to_midnight_densest(self):
        halves = [
            sum(
                self.model.intensity(h * SECONDS_PER_HOUR)
                for h in range(start, start + 12)
            )
            for start in (0, 12)
        ]
        assert halves[1] > halves[0]

    def test_weekend_depression(self):
        monday = self.model.intensity(14 * SECONDS_PER_HOUR)
        saturday = self.model.intensity(
            5 * SECONDS_PER_DAY + 14 * SECONDS_PER_HOUR
        )
        assert saturday < 0.7 * monday

    def test_linear_trend(self):
        early = self.model.intensity(14 * SECONDS_PER_HOUR)
        # Same Monday 14:00 slot, 28 weeks later (also a Monday).
        late_day = 196
        late = self.model.intensity(
            late_day * SECONDS_PER_DAY + 14 * SECONDS_PER_HOUR
        )
        expected = 1.0 + self.model.trend_per_day * late_day
        # Day 196 is inside the summer window? (92..160) — no, past it.
        assert late / early == pytest.approx(expected, rel=0.01)

    def test_summer_evening_flattening(self):
        evening_hour = 20 * SECONDS_PER_HOUR
        june_monday = 95 * SECONDS_PER_DAY  # inside summer window
        march_monday = 4 * 7 * SECONDS_PER_DAY
        june = self.model.intensity(june_monday + evening_hour)
        march = self.model.intensity(march_monday + evening_hour)
        # Remove the trend to compare shapes.
        june /= 1.0 + self.model.trend_per_day * 95
        march /= 1.0 + self.model.trend_per_day * 28
        assert june < march

    def test_bin_weights_length(self):
        weights = self.model.bin_weights(10)
        assert len(weights) == 144
        assert all(w > 0 for w in weights)


class TestIncidents:
    def test_incident_coverage(self):
        incident = Incident("x", 5, 7, 4.0, start_bin=10, end_bin=20)
        assert incident.covers(6, 15)
        assert not incident.covers(4, 15)
        assert not incident.covers(6, 25)

    def test_multiplier_composes(self):
        schedule = IncidentSchedule(
            [
                Incident("a", 0, 0, 2.0),
                Incident("b", 0, 0, 3.0, start_bin=0, end_bin=10),
            ]
        )
        assert schedule.multiplier(0, 5) == 6.0
        assert schedule.multiplier(0, 50) == 2.0
        assert schedule.multiplier(1, 5) == 1.0

    def test_lost_bins_and_coverage(self):
        schedule = IncidentSchedule()
        schedule.mark_lost_bins(3, range(0, 72))
        assert schedule.coverage(3) == pytest.approx(0.5)
        assert schedule.is_lost(3, 10)
        assert not schedule.is_lost(3, 100)
        schedule.mark_lost_day(4)
        assert schedule.coverage(4) == 0.0

    def test_default_campaign_has_upgrade_and_maintenance(self):
        schedule = default_campaign_schedule(seed=1)
        names = {i.name for i in schedule.incidents}
        assert "isp-infrastructure-upgrade" in names
        assert "maintenance-window" in names
        # The upgrade multiplies whole days by ~8x.
        assert schedule.multiplier(88, 30) >= 8.0

    def test_default_campaign_deterministic(self):
        a = default_campaign_schedule(seed=2)
        b = default_campaign_schedule(seed=2)
        assert [i.name for i in a.incidents] == [i.name for i in b.incidents]


@pytest.fixture(scope="module")
def small_population():
    return PeerPopulation.synthesize(
        n_peers=10, total_prefixes=2000, n_dominant=3, seed=5
    )


@pytest.fixture(scope="module")
def generator(small_population):
    return TraceGenerator(population=small_population, seed=5)


class TestPeerPopulation:
    def test_share_structure(self, small_population):
        shares = sorted(
            (p.table_share for p in small_population.peers), reverse=True
        )
        assert sum(shares) == pytest.approx(1.0)
        # Dominant peers hold far more than the tail.
        assert shares[0] > 5 * shares[-1]

    def test_prefix_counts_match_shares(self, small_population):
        for peer in small_population.peers:
            assert len(peer.prefixes) >= 1
        total = sum(len(p.prefixes) for p in small_population.peers)
        assert abs(total - 2000) <= len(small_population.peers)

    def test_pairs_unique(self, small_population):
        pairs = small_population.all_pairs
        assert len(pairs) == len(set(pairs))


class TestDayPlan:
    def test_deterministic(self, generator):
        a = generator.plan_day(50)
        b = generator.plan_day(50)
        assert a.category_total(UpdateCategory.AADUP) == b.category_total(
            UpdateCategory.AADUP
        )

    def test_participation_fractions_in_range(self, generator):
        plan = generator.plan_day(10)
        total = generator.population.total_pairs
        frac = len(plan.affected_pairs(UpdateCategory.WADIFF)) / total
        assert 0.0 < frac < 0.25

    def test_bin_counts_sum_to_total(self, generator):
        plan = generator.plan_day(10)
        for category in plan.participation:
            counts = plan.bin_counts(category)
            assert len(counts) == BINS_PER_DAY
            if not plan.lost_bins:
                assert sum(counts) == plan.category_total(category)

    def test_lost_bins_zeroed(self, generator):
        schedule = IncidentSchedule()
        schedule.mark_lost_bins(3, range(0, 10))
        gen = TraceGenerator(
            population=generator.population, schedule=schedule, seed=5
        )
        plan = gen.plan_day(3)
        counts = plan.bin_counts(UpdateCategory.AADUP)
        assert all(counts[i] == 0 for i in range(10))

    def test_diurnal_shape_in_bins(self, generator):
        plan = generator.plan_day(14)  # a Monday
        counts = plan.bin_counts(UpdateCategory.AADUP)
        night = sum(counts[0:36])      # 00:00-06:00
        afternoon = sum(counts[72:108])  # 12:00-18:00
        assert afternoon > 2 * night

    def test_wwdup_dominates_planned_volume(self, generator):
        plan = generator.plan_day(20)
        wwdup = plan.category_total(UpdateCategory.WWDUP)
        instability = sum(
            plan.category_total(c)
            for c in (
                UpdateCategory.AADIFF,
                UpdateCategory.WADIFF,
                UpdateCategory.WADUP,
            )
        )
        assert wwdup > 3 * instability


class TestMaterialization:
    def test_records_time_ordered_and_in_day(self, generator):
        records = generator.day_records(30, pair_fraction=0.2)
        times = [r.time for r in records]
        assert times == sorted(times)
        # Episode tails may spill a few hours past midnight (real
        # cross-midnight flap episodes do too).
        assert all(
            30 * SECONDS_PER_DAY <= t < 31.4 * SECONDS_PER_DAY for t in times
        )

    def test_classifier_reproduces_planned_categories(self, small_population):
        """After a warm-up day, classified counts should be close to
        the planned per-category totals (scaled by pair_fraction=1)."""
        gen = TraceGenerator(population=small_population, seed=9)
        clf = StreamClassifier()
        # Warm-up: state (generator's and classifier's) converges.
        for _ in classify(gen.day_records(0, pair_fraction=1.0), clf):
            pass
        plan = gen.plan_day(1)
        counts = CategoryCounts()
        counts.extend(
            classify(gen.day_records(1, pair_fraction=1.0, plan=plan), clf)
        )
        for category in (
            UpdateCategory.AADUP,
            UpdateCategory.WWDUP,
            UpdateCategory.AADIFF,
        ):
            planned = plan.category_total(category)
            got = counts[category]
            assert got >= 0.7 * planned, category
            # Some overshoot is possible from bootstrap side-effects.
            assert got <= 1.3 * planned + 10, category

    def test_pair_fraction_scales_volume(self, generator):
        full = len(generator.day_records(40, pair_fraction=1.0))
        generator.reset_state()
        tenth = len(generator.day_records(40, pair_fraction=0.1))
        generator.reset_state()
        assert 0.03 * full < tenth < 0.25 * full

    def test_timer_spacing_mass(self, small_population):
        """Per-category event spacings concentrate on the 30s/60s bins
        (the Figure 8 signature).  Raw update gaps also include the
        short W->A micro-outages, so the category-filtered measure is
        the meaningful one."""
        from repro.analysis.interarrival import (
            histogram_proportions,
            interarrival_times,
            timer_bin_mass,
        )
        from repro.core.classifier import StreamClassifier, classify

        gen = TraceGenerator(population=small_population, seed=3)
        clf = StreamClassifier()
        updates = []
        for day in range(3):
            updates.extend(
                classify(gen.day_records(day, pair_fraction=1.0), clf)
            )
        for category in (UpdateCategory.AADUP, UpdateCategory.AADIFF):
            gaps = interarrival_times(updates, category)
            mass = timer_bin_mass(histogram_proportions(gaps))
            assert mass > 0.4, category

    def test_campaign_bin_series_shape(self, generator):
        series = generator.campaign_bin_series(
            range(7), [UpdateCategory.AADIFF]
        )
        assert len(series[UpdateCategory.AADIFF]) == 7 * BINS_PER_DAY


class TestCalibrationGuardrails:
    """Regression guards: the generator's absolute magnitudes must stay
    in the paper's bands (retuning one knob must not silently shift
    the headline volumes)."""

    def test_daily_totals_in_paper_band(self):
        gen = TraceGenerator(seed=2)
        totals = []
        fractions = []
        for day in range(60, 200, 20):
            plan = gen.plan_day(day)
            total = sum(
                plan.category_total(c) for c in plan.participation
            )
            path = plan.category_total(UpdateCategory.WWDUP) + (
                plan.category_total(UpdateCategory.AADUP)
            )
            totals.append(total)
            fractions.append(path / total)
        # Days range from quiet (~1M) to bursty (beyond 6M); the
        # *typical* day sits in the paper's 3-6M band, and every day
        # is overwhelmingly pathological.
        assert all(800_000 <= t <= 9_000_000 for t in totals), totals
        typical = sorted(totals)[len(totals) // 2]
        assert 2_000_000 <= typical <= 6_500_000, totals
        assert all(f >= 0.94 for f in fractions), fractions

    def test_instability_matches_figure3_threshold_scale(self):
        gen = TraceGenerator(seed=2)
        from repro.core.taxonomy import INSTABILITY_CATEGORIES

        plan = gen.plan_day(120)
        instability = sum(
            plan.category_total(c) for c in INSTABILITY_CATEGORIES
        )
        # ~345-770 per 10-min bin means ~50k-110k per day mid-campaign.
        assert 30_000 <= instability <= 200_000

    def test_wwdup_band(self):
        gen = TraceGenerator(seed=2)
        values = [
            gen.plan_day(day).category_total(UpdateCategory.WWDUP)
            for day in (70, 130, 190)
        ]
        # Paper: 0.5M - 6M per day at Mae-East.
        assert all(500_000 <= v <= 8_000_000 for v in values), values
