"""Tests for the columnar spill-chunk format (repro.core.spill).

The chunk is the out-of-core campaign's unit of durable state, so the
properties under test are the ones resume leans on: lossless
dtype/attribute round-trips, deterministic bytes, zero-copy reads,
and loud failure (ChunkCorrupt) for every flavor of damage.
"""

import numpy as np
import pytest

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.core.columns import (
    NO_ATTR,
    RECORD_DTYPE,
    AttributeTable,
    RecordColumns,
)
from repro.core.spill import (
    ChunkCorrupt,
    attribute_from_payload,
    attribute_payload,
    read_chunk,
    verify_chunk,
    write_chunk,
)


def sample_columns(rows: int = 64, seed: int = 3) -> RecordColumns:
    rng = np.random.default_rng(seed)
    table = AttributeTable()
    attr_ids = [
        table.intern(
            PathAttributes(
                as_path=AsPath((701, 1239 + i)),
                next_hop=7 + i,
                med=None if i % 2 else 20,
                local_pref=None if i % 3 else 120,
                communities=frozenset({0xFFFFFF01}) if i % 2 else frozenset(),
            )
        )
        for i in range(4)
    ]
    data = np.empty(rows, dtype=RECORD_DTYPE)
    data["time"] = np.sort(rng.uniform(0, 86400, rows))
    data["peer_id"] = rng.integers(0, 8, rows)
    data["peer_asn"] = rng.integers(100, 200, rows)
    data["net"] = rng.integers(0, 2**24, rows)
    data["plen"] = 24
    data["kind"] = rng.integers(1, 3, rows)
    announced = data["kind"] == 1
    data["attr_id"] = NO_ATTR
    data["attr_id"][announced] = rng.choice(attr_ids, int(announced.sum()))
    return RecordColumns(data, table)


class TestRoundTrip:
    def test_data_attrs_and_extra_survive(self, tmp_path):
        columns = sample_columns()
        extra = {"day": 12, "campaign": "abc", "state": {"net": [1, 2]}}
        path = tmp_path / "day-0012.rcol"
        info = write_chunk(path, columns, extra=extra)
        assert info.rows == len(columns)

        chunk = read_chunk(path)
        assert chunk.info.sha256 == info.sha256
        assert chunk.extra == extra
        assert (chunk.columns.data == columns.data).all()
        assert len(chunk.columns.attrs) == len(columns.attrs)
        for i in range(len(columns.attrs)):
            assert chunk.columns.attrs[i] == columns.attrs[i]

    def test_read_is_memory_mapped(self, tmp_path):
        path = tmp_path / "c.rcol"
        write_chunk(path, sample_columns())
        data = read_chunk(path).columns.data
        base = data
        while getattr(base, "base", None) is not None:
            if isinstance(base, np.memmap):
                break
            base = base.base
        assert isinstance(base, np.memmap)
        assert not data.flags.writeable

    def test_chunk_bytes_are_deterministic(self, tmp_path):
        a, b = tmp_path / "a.rcol", tmp_path / "b.rcol"
        info_a = write_chunk(a, sample_columns(), extra={"day": 1})
        info_b = write_chunk(b, sample_columns(), extra={"day": 1})
        assert a.read_bytes() == b.read_bytes()
        assert info_a.sha256 == info_b.sha256

    def test_empty_chunk(self, tmp_path):
        path = tmp_path / "empty.rcol"
        info = write_chunk(path, RecordColumns.empty())
        assert info.rows == 0
        chunk = read_chunk(path)
        assert len(chunk.columns) == 0
        assert verify_chunk(path).sha256 == info.sha256

    def test_attribute_codec_covers_every_field(self):
        attrs = PathAttributes(
            as_path=AsPath((701, 1239, 3561)),
            next_hop=0x0A000001,
            origin=Origin.EGP,
            med=30,
            local_pref=200,
            communities=frozenset({0xFFFFFF01, 0xFFFFFF02}),
            atomic_aggregate=True,
            aggregator=(701, 42),
        )
        assert attribute_from_payload(attribute_payload(attrs)) == attrs


class TestCorruption:
    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "c.rcol"
        write_chunk(path, sample_columns())
        good = path.read_bytes()
        for keep in (0, 4, 100, len(good) - 1):
            path.write_bytes(good[:keep])
            with pytest.raises(ChunkCorrupt):
                read_chunk(path)

    def test_every_bit_flip_region_detected(self, tmp_path):
        path = tmp_path / "c.rcol"
        write_chunk(path, sample_columns())
        good = path.read_bytes()
        # Magic, data segment, footer, trailer: one flip in each.
        for offset in (0, 32, len(good) - 40, len(good) - 4):
            bad = bytearray(good)
            bad[offset] ^= 0x40
            path.write_bytes(bytes(bad))
            with pytest.raises(ChunkCorrupt):
                read_chunk(path)
        path.write_bytes(good)
        assert verify_chunk(path).rows == 64

    def test_garbage_and_missing_files_detected(self, tmp_path):
        path = tmp_path / "c.rcol"
        path.write_bytes(b"{not a chunk at all}")
        with pytest.raises(ChunkCorrupt):
            verify_chunk(path)
        with pytest.raises(ChunkCorrupt):
            verify_chunk(tmp_path / "absent.rcol")

    def test_stale_footer_metadata_detected(self, tmp_path):
        """Editing footer metadata (even keeping valid JSON) breaks
        the digest, which covers meta as well as data."""
        path = tmp_path / "c.rcol"
        write_chunk(path, sample_columns(), extra={"day": 1})
        good = path.read_bytes()
        bad = good.replace(b'"day":1', b'"day":2')
        assert bad != good
        path.write_bytes(bad)
        with pytest.raises(ChunkCorrupt):
            read_chunk(path)

    def test_unverified_read_skips_digest(self, tmp_path):
        """verify=False trades safety for speed (used nowhere in the
        campaign, but the escape hatch must actually skip the hash)."""
        path = tmp_path / "c.rcol"
        write_chunk(path, sample_columns())
        good = bytearray(path.read_bytes())
        good[16] ^= 1  # flip inside the data segment
        path.write_bytes(bytes(good))
        chunk = read_chunk(path, verify=False)  # loads without raising
        assert len(chunk.columns) == 64
        with pytest.raises(ChunkCorrupt):
            read_chunk(path, verify=True)
