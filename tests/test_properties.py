"""Cross-cutting property-based tests: system-level invariants that
hold regardless of inputs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.rib import LocRib, Route, best_route
from repro.collector.record import UpdateKind, UpdateRecord
from repro.core.classifier import classify
from repro.core.instability import CategoryCounts
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.workloads.generator import PeerPopulation, TraceGenerator

P = Prefix.parse


# ---------------------------------------------------------------------------
# decision process
# ---------------------------------------------------------------------------

routes = st.builds(
    lambda path, peer, lp, med: Route(
        P("10.0.0.0/8"),
        PathAttributes(
            as_path=AsPath(path), next_hop=peer, local_pref=lp, med=med
        ),
        peer,
    ),
    st.lists(st.integers(1, 100), min_size=1, max_size=5),
    st.integers(1, 50),
    st.one_of(st.none(), st.integers(0, 200)),
    st.one_of(st.none(), st.integers(0, 200)),
)


@settings(max_examples=80)
@given(st.lists(routes, min_size=1, max_size=8))
def test_best_route_permutation_invariant(candidates):
    """The decision process must not depend on announcement order."""
    rng = random.Random(42)
    baseline = best_route(candidates)
    for _ in range(3):
        shuffled = candidates[:]
        rng.shuffle(shuffled)
        assert best_route(shuffled) == baseline


@settings(max_examples=80)
@given(st.lists(routes, min_size=1, max_size=8))
def test_best_route_is_a_candidate(candidates):
    best = best_route(candidates)
    assert best in candidates


@settings(max_examples=50)
@given(st.lists(routes, min_size=2, max_size=8))
def test_removing_non_best_does_not_change_winner(candidates):
    best = best_route(candidates)
    others = [r for r in candidates if r != best]
    if others:
        reduced = [r for r in candidates if r != others[0]]
        assert best_route(reduced) == best


# ---------------------------------------------------------------------------
# LocRib consistency under arbitrary update sequences
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.booleans(),                      # announce?
        st.integers(1, 4),                  # peer
        st.sampled_from(["10.0.0.0/8", "11.0.0.0/8"]),
        st.integers(1, 3),                  # path length
    ),
    max_size=30,
)


@settings(max_examples=80)
@given(ops)
def test_locrib_best_always_consistent_with_adjin(sequence):
    """After any update sequence, the chosen best must equal a fresh
    decision over the surviving candidates."""
    rib = LocRib()
    for is_announce, peer, prefix_text, plen in sequence:
        prefix = P(prefix_text)
        if is_announce:
            attrs = PathAttributes(
                as_path=AsPath(tuple(range(100, 100 + plen))),
                next_hop=peer,
            )
            rib.apply_announce(peer, prefix, attrs)
        else:
            rib.apply_withdraw(peer, prefix)
    for prefix_text in ("10.0.0.0/8", "11.0.0.0/8"):
        prefix = P(prefix_text)
        candidates = rib.adj_in.candidates(prefix)
        expected = best_route(candidates)
        assert rib.best(prefix) == expected


# ---------------------------------------------------------------------------
# engine determinism
# ---------------------------------------------------------------------------

@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 100.0), st.integers(0, 9)),
        max_size=20,
    )
)
def test_engine_runs_are_reproducible(events):
    def run_once():
        engine = Engine()
        fired = []
        for delay, tag in events:
            engine.schedule(delay, fired.append, tag)
        engine.run()
        return fired, engine.now

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# generator invariants
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_generator():
    population = PeerPopulation.synthesize(
        n_peers=5, total_prefixes=400, n_dominant=2, seed=13
    )
    return TraceGenerator(population=population, seed=13)


class TestGeneratorInvariants:
    def test_records_reproducible(self, tiny_generator):
        a = tiny_generator.day_records(5, pair_fraction=1.0)
        tiny_generator.reset_state()
        b = tiny_generator.day_records(5, pair_fraction=1.0)
        tiny_generator.reset_state()
        assert a == b

    def test_per_pair_times_monotone(self, tiny_generator):
        records = tiny_generator.day_records(6, pair_fraction=1.0)
        tiny_generator.reset_state()
        by_pair = {}
        for i, record in enumerate(records):
            by_pair.setdefault(record.prefix_as, []).append(
                (record.time, i)
            )
        for times in by_pair.values():
            sorted_by_time = sorted(times)
            assert sorted_by_time == sorted(times, key=lambda t: t[0])

    def test_classification_has_no_surprise_categories(self, tiny_generator):
        """A freshly-seeded single day classifies into exactly the
        planned categories plus bootstrap/uncategorized events."""
        records = tiny_generator.day_records(7, pair_fraction=1.0)
        tiny_generator.reset_state()
        counts = CategoryCounts()
        counts.extend(classify(records))
        assert counts.total == len(records)

    def test_plan_totals_bound_materialized_counts(self, tiny_generator):
        plan = tiny_generator.plan_day(8)
        records = tiny_generator.day_records(
            8, pair_fraction=1.0, plan=plan
        )
        tiny_generator.reset_state()
        planned = sum(
            plan.category_total(c) for c in plan.participation
        )
        # Records include W halves and bootstraps, so they exceed the
        # planned event count, but not by more than ~2.5x (each event
        # emits at most 2-3 records).
        assert planned * 0.5 <= len(records) <= planned * 3.0


# ---------------------------------------------------------------------------
# end-to-end eventual consistency
# ---------------------------------------------------------------------------

from hypothesis import HealthCheck

flap_sequences = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=300.0),  # when
        st.integers(0, 5),                          # which prefix
        st.booleans(),                              # up or down
    ),
    max_size=20,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(flap_sequences)
def test_router_pair_eventually_consistent(sequence):
    """After any announce/withdraw schedule and enough quiet time, the
    peer's table equals the origin's surviving originations exactly."""
    from repro.sim.router import Router, connect

    engine = Engine()
    origin = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
    observer = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
    connect(origin, observer)
    engine.run_until(30.0)
    prefixes = [Prefix((90 << 24) + i * 65536, 16) for i in range(6)]
    final_state = {}
    # Events fire in time order (FIFO on ties, matching the stable
    # sort).  Order by the *effective* scheduled time: tiny offsets
    # (e.g. 1e-144) collapse into 30.0 in float arithmetic, so sorting
    # the raw offsets would disagree with the engine's fire order.
    for when, index, up in sorted(sequence, key=lambda e: 30.0 + e[0]):
        final_state[prefixes[index]] = up
    for when, index, up in sequence:
        prefix = prefixes[index]
        if up:
            engine.schedule_at(
                30.0 + when, origin.originate, prefix
            )
        else:
            engine.schedule_at(
                30.0 + when, origin.withdraw_origin, prefix
            )
    # Quiet period: several MRAI rounds beyond the last event.
    engine.run_until(30.0 + 300.0 + 60.0)
    expected = {p for p, up in final_state.items() if up}
    # Note: out-of-order same-time events resolve by schedule order,
    # which matches dict insertion order here.
    actual = {p for p in prefixes if observer.loc_rib.best(p) is not None}
    assert actual == expected
