"""Unit tests for the event engine, timers, and links."""

import random

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.link import CsuLink, Link
from repro.sim.timers import IntervalTimer, MraiBatcher


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, fired.append, "c")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = Engine()
        fired = []
        for tag in "abc":
            engine.schedule(1.0, fired.append, tag)
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_advances_clock(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run_until(10.0)
        assert engine.now == 10.0
        assert engine.events_processed == 1

    def test_run_until_leaves_future_events(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, fired.append, "early")
        engine.schedule(15.0, fired.append, "late")
        engine.run_until(10.0)
        assert fired == ["early"]
        assert engine.pending == 1
        engine.run_until(20.0)
        assert fired == ["early", "late"]

    def test_cancel(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_rejects_past_scheduling(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(1.0, chain, n + 1)

        engine.schedule(0.0, chain, 0)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0

    def test_next_event_time_skips_cancelled(self):
        engine = Engine()
        h = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        h.cancel()
        assert engine.next_event_time() == 2.0

    def test_max_events_bound(self):
        engine = Engine()
        for i in range(10):
            engine.schedule(float(i), lambda: None)
        assert engine.run(max_events=4) == 4
        assert engine.pending == 6

    def test_step_skips_cancelled(self):
        engine = Engine()
        fired = []
        doomed = engine.schedule(1.0, fired.append, "dead")
        engine.schedule(2.0, fired.append, "b")
        doomed.cancel()
        assert engine.step()
        assert fired == ["b"]
        assert engine.now == 2.0

    def test_run_until_max_events_skips_cancelled(self):
        # Cancelled entries at the head of the queue must not count
        # against max_events (they were never events, just husks).
        engine = Engine()
        fired = []
        doomed = [engine.schedule(1.0, fired.append, "dead") for _ in range(5)]
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        for handle in doomed:
            handle.cancel()
        assert engine.run_until(10.0, max_events=2) == 2
        assert fired == ["a", "b"]

    def test_reschedule_reuses_fired_handle(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        engine.run()
        assert handle.fired
        again = engine.reschedule(handle, 2.0)
        assert again is handle  # the zero-allocation re-arm path
        assert not handle.fired
        assert handle.time == 2.0
        engine.run()
        assert fired == ["x", "x"]
        assert engine.now == 2.0

    def test_reschedule_pending_handle_left_untouched(self):
        # Re-arming a still-pending handle must not move it: the caller
        # gets a fresh handle and both events fire.
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        other = engine.reschedule(handle, 3.0)
        assert other is not handle
        assert handle.time == 1.0
        engine.run()
        assert fired == ["x", "x"]

    def test_reschedule_rejects_past(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.reschedule(handle, 0.5)

    def test_compaction_preserves_order_after_mass_cancel(self):
        # Cancel enough to trigger the dead-sweep (dead > 4x live) and
        # check the survivors still fire in exact (time, seq) order.
        engine = Engine()
        fired = []
        handles = [
            engine.schedule(float(i % 40), fired.append, i)
            for i in range(600)
        ]
        for i, handle in enumerate(handles):
            if i % 30 != 0:
                handle.cancel()
        survivors = [i for i in range(600) if i % 30 == 0]
        assert engine.pending == len(survivors)
        engine.run()
        assert fired == sorted(survivors, key=lambda i: (i % 40, i))

    def test_same_instant_scheduling_during_drain(self):
        # Zero-delay events appended mid-bucket drain in the same pass.
        engine = Engine()
        fired = []

        def spawn(n):
            fired.append(n)
            if n < 3:
                engine.schedule(0.0, spawn, n + 1)

        engine.schedule(5.0, spawn, 0)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 5.0

    def test_next_event_time_reentrant_during_drain(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(engine.next_event_time()))
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: seen.append(engine.next_event_time()))
        engine.schedule(4.0, lambda: None)
        engine.run()
        # First probe sees its same-instant sibling; second sees 4.0.
        assert seen == [1.0, 4.0]


class TestIntervalTimer:
    def test_unjittered_fires_on_exact_multiples(self):
        engine = Engine()
        times = []
        timer = IntervalTimer(engine, 30.0, lambda: times.append(engine.now))
        timer.start()
        engine.run_until(150.0)
        assert times == [30.0, 60.0, 90.0, 120.0, 150.0]

    def test_unjittered_phase_locked_regardless_of_start(self):
        engine = Engine()
        times = []
        engine.schedule(7.0, lambda: None)
        engine.run()  # now = 7.0
        timer = IntervalTimer(engine, 30.0, lambda: times.append(engine.now))
        timer.start()
        engine.run_until(100.0)
        # Still fires at multiples of 30, not 7 + k*30.
        assert times == [30.0, 60.0, 90.0]

    def test_two_unjittered_timers_share_instants(self):
        engine = Engine()
        a_times, b_times = [], []
        IntervalTimer(engine, 30.0, lambda: a_times.append(engine.now)).start()
        IntervalTimer(engine, 30.0, lambda: b_times.append(engine.now)).start()
        engine.run_until(300.0)
        assert a_times == b_times  # the synchronization hazard

    def test_jittered_periods_vary_and_are_bounded(self):
        engine = Engine()
        times = []
        timer = IntervalTimer(
            engine,
            30.0,
            lambda: times.append(engine.now),
            jitter=0.25,
            rng=random.Random(42),
        )
        timer.start()
        engine.run_until(600.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(22.5 - 1e-9 <= g <= 30.0 + 1e-9 for g in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 1

    def test_stop_prevents_firing(self):
        engine = Engine()
        times = []
        timer = IntervalTimer(engine, 10.0, lambda: times.append(engine.now))
        timer.start()
        engine.run_until(15.0)
        timer.stop()
        engine.run_until(100.0)
        assert times == [10.0]

    def test_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            IntervalTimer(engine, 0.0, lambda: None)
        with pytest.raises(ValueError):
            IntervalTimer(engine, 10.0, lambda: None, jitter=1.0)

    def test_phase_offset(self):
        engine = Engine()
        times = []
        timer = IntervalTimer(
            engine, 30.0, lambda: times.append(engine.now), phase=5.0
        )
        timer.start()
        engine.run_until(100.0)
        # Fires at phase + k*interval instants that are in the future.
        assert times == [5.0, 35.0, 65.0, 95.0]


class TestMraiBatcher:
    def test_batches_until_flush(self):
        engine = Engine()
        flushes = []
        batcher = MraiBatcher(engine, flushes.append, interval=30.0)
        batcher.start()
        batcher.mark_dirty("p1")
        batcher.mark_dirty("p2")
        batcher.mark_dirty("p1")  # dedup
        assert batcher.pending == 2
        engine.run_until(30.0)
        assert flushes == [{"p1", "p2"}]
        assert batcher.pending == 0

    def test_no_flush_when_clean(self):
        engine = Engine()
        flushes = []
        batcher = MraiBatcher(engine, flushes.append, interval=30.0)
        batcher.start()
        engine.run_until(120.0)
        assert flushes == []
        assert batcher.flush_count == 0

    def test_marks_between_flushes_carry_to_next(self):
        engine = Engine()
        flushes = []
        batcher = MraiBatcher(engine, flushes.append, interval=30.0)
        batcher.start()
        batcher.mark_dirty("a")
        engine.run_until(30.0)

        def mark_later():
            batcher.mark_dirty("b")

        engine.schedule(5.0, mark_later)
        engine.run_until(60.0)
        assert flushes == [{"a"}, {"b"}]


class TestLink:
    def _endpoint(self, log, ident):
        return {
            "deliver": lambda sender, msg: log.append((ident, sender, msg)),
        }

    def test_delivery_with_delay(self):
        engine = Engine()
        log = []
        link = Link(engine, delay=0.5)
        link.attach(1, lambda s, m: log.append(("to1", s, m)))
        link.attach(2, lambda s, m: log.append(("to2", s, m)))
        link.send(1, "hello")
        engine.run()
        assert log == [("to2", 1, "hello")]
        assert engine.now == 0.5
        assert link.messages_delivered == 1

    def test_send_on_down_link_lost(self):
        engine = Engine()
        link = Link(engine)
        link.attach(1, lambda s, m: None)
        link.attach(2, lambda s, m: None)
        link.go_down()
        assert not link.send(1, "x")
        assert link.messages_lost == 1

    def test_in_flight_lost_on_down(self):
        engine = Engine()
        log = []
        link = Link(engine, delay=1.0)
        link.attach(1, lambda s, m: log.append(m))
        link.attach(2, lambda s, m: log.append(m))
        link.send(1, "doomed")
        engine.schedule(0.5, link.go_down)
        engine.run()
        assert log == []
        assert link.messages_lost == 1

    def test_up_down_callbacks(self):
        engine = Engine()
        events = []
        link = Link(engine)
        link.attach(1, lambda s, m: None, on_up=lambda: events.append("up1"),
                    on_down=lambda: events.append("down1"))
        link.attach(2, lambda s, m: None, on_down=lambda: events.append("down2"))
        link.go_down()
        link.go_down()  # idempotent
        link.go_up()
        assert events == ["down1", "down2", "up1"]
        assert link.down_count == 1

    def test_down_does_not_recount_delivered(self):
        # Regression: _in_flight keeps delivered (fired) handles around
        # until the >256 compaction; go_down() must not book them as
        # lost a second time.
        engine = Engine()
        log = []
        link = Link(engine, delay=0.5)
        link.attach(1, lambda s, m: log.append(m))
        link.attach(2, lambda s, m: log.append(m))
        link.send(1, "m1")
        engine.run()
        assert log == ["m1"]
        link.go_down()
        assert link.messages_lost == 0
        assert link.messages_delivered == 1

    def test_down_counts_only_pending_in_flight(self):
        engine = Engine()
        log = []
        link = Link(engine, delay=1.0)
        link.attach(1, lambda s, m: log.append(m))
        link.attach(2, lambda s, m: log.append(m))
        link.send(1, "delivered")
        engine.run()
        link.send(2, "doomed-a")
        link.send(1, "doomed-b")
        link.go_down()
        assert link.messages_lost == 2
        assert link.messages_delivered == 1
        engine.run()
        assert log == ["delivered"]

    def test_third_endpoint_rejected(self):
        engine = Engine()
        link = Link(engine)
        link.attach(1, lambda s, m: None)
        link.attach(2, lambda s, m: None)
        with pytest.raises(ValueError):
            link.attach(3, lambda s, m: None)


class TestCsuLink:
    def test_oscillates_with_dominant_period(self):
        engine = Engine()
        downs = []
        link = CsuLink(
            engine,
            up_duration=55.0,
            down_duration=5.0,
            noise=0.0,
            rng=random.Random(0),
        )
        link.attach(1, lambda s, m: None,
                    on_down=lambda: downs.append(engine.now))
        link.attach(2, lambda s, m: None)
        engine.run_until(600.0)
        assert len(downs) == 10
        gaps = [b - a for a, b in zip(downs, downs[1:])]
        assert all(abs(g - 60.0) < 1e-9 for g in gaps)

    def test_noise_keeps_period_near_nominal(self):
        engine = Engine()
        downs = []
        link = CsuLink(engine, noise=0.02, rng=random.Random(7))
        link.attach(1, lambda s, m: None,
                    on_down=lambda: downs.append(engine.now))
        link.attach(2, lambda s, m: None)
        engine.run_until(1200.0)
        gaps = [b - a for a, b in zip(downs, downs[1:])]
        assert all(abs(g - 60.0) / 60.0 < 0.06 for g in gaps)

    def test_stop_oscillating_leaves_link_up(self):
        engine = Engine()
        link = CsuLink(engine, up_duration=10.0, down_duration=2.0, noise=0.0)
        link.attach(1, lambda s, m: None)
        link.attach(2, lambda s, m: None)
        engine.run_until(11.0)
        assert not link.is_up
        link.stop_oscillating()
        engine.run_until(100.0)
        assert link.is_up

    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            CsuLink(Engine(), up_duration=0.0)
