"""Unit and property tests for the BGP wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.messages import (
    KeepAliveMessage,
    NotificationCode,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.wire import HEADER_SIZE, WireError, decode_message, encode_message
from repro.net.prefix import Prefix

from .test_prefix import prefixes


def roundtrip(msg):
    data = encode_message(msg)
    decoded, consumed = decode_message(data)
    assert consumed == len(data)
    return decoded


class TestOpen:
    def test_roundtrip(self):
        msg = OpenMessage(asn=701, hold_time=90.0, bgp_identifier=0x0A000001)
        assert roundtrip(msg) == msg

    def test_rejects_bad_version(self):
        data = bytearray(encode_message(OpenMessage(asn=1)))
        data[HEADER_SIZE] = 3  # version byte
        with pytest.raises(WireError):
            decode_message(bytes(data))

    def test_rejects_oversized_hold(self):
        with pytest.raises(WireError):
            encode_message(OpenMessage(asn=1, hold_time=1e9))


class TestKeepaliveAndNotification:
    def test_keepalive_roundtrip(self):
        assert roundtrip(KeepAliveMessage()) == KeepAliveMessage()

    def test_keepalive_is_header_only(self):
        assert len(encode_message(KeepAliveMessage())) == HEADER_SIZE

    def test_notification_roundtrip(self):
        msg = NotificationMessage(
            NotificationCode.HOLD_TIMER_EXPIRED, subcode=1, data=b"xy"
        )
        assert roundtrip(msg) == msg

    def test_notification_cease(self):
        assert roundtrip(NotificationMessage(NotificationCode.CEASE)).code is (
            NotificationCode.CEASE
        )


class TestUpdate:
    def _attrs(self):
        return PathAttributes(
            as_path=AsPath((701, 1239, 3561)),
            next_hop=0x0A000001,
            origin=Origin.EGP,
            med=120,
            local_pref=200,
            communities=frozenset({0xFFFFFF01, 0x02BC0001}),
            atomic_aggregate=True,
            aggregator=(701, 0x0A0000FF),
        )

    def test_full_roundtrip(self):
        msg = UpdateMessage(
            withdrawn=(Prefix.parse("10.0.0.0/8"), Prefix.parse("192.0.2.0/24")),
            announced=(Prefix.parse("198.51.100.0/24"),),
            attributes=self._attrs(),
        )
        assert roundtrip(msg) == msg

    def test_withdrawal_only(self):
        msg = UpdateMessage(withdrawn=(Prefix.parse("10.0.0.0/8"),))
        decoded = roundtrip(msg)
        assert decoded.withdrawn == msg.withdrawn
        assert decoded.announced == ()

    def test_announce_only_minimal_attrs(self):
        msg = UpdateMessage(
            announced=(Prefix.parse("10.0.0.0/8"),),
            attributes=PathAttributes(as_path=AsPath((7,)), next_hop=1),
        )
        assert roundtrip(msg) == msg

    def test_empty_update(self):
        decoded = roundtrip(UpdateMessage())
        assert decoded.is_empty

    def test_default_route_nlri(self):
        msg = UpdateMessage(
            announced=(Prefix.parse("0.0.0.0/0"),),
            attributes=PathAttributes(as_path=AsPath((7,)), next_hop=1),
        )
        assert roundtrip(msg) == msg

    def test_host_route_nlri(self):
        msg = UpdateMessage(withdrawn=(Prefix.parse("192.0.2.1/32"),))
        assert roundtrip(msg) == msg

    def test_prefix_update_count(self):
        msg = UpdateMessage(
            withdrawn=(Prefix.parse("10.0.0.0/8"),),
            announced=(
                Prefix.parse("11.0.0.0/8"),
                Prefix.parse("12.0.0.0/8"),
            ),
            attributes=PathAttributes(as_path=AsPath((7,)), next_hop=1),
        )
        assert msg.prefix_update_count == 3

    def test_rejects_as_set_segment(self):
        # Hand-build an AS_PATH with segment type 1 (AS_SET).
        msg = UpdateMessage(
            announced=(Prefix.parse("10.0.0.0/8"),),
            attributes=PathAttributes(as_path=AsPath((7,)), next_hop=1),
        )
        data = bytearray(encode_message(msg))
        idx = data.find(bytes([0x40, 2, 4, 2]))  # AS_PATH attr, seg type 2
        assert idx >= 0
        data[idx + 3] = 1  # AS_SET
        with pytest.raises(WireError):
            decode_message(bytes(data))


class TestFraming:
    def test_bad_marker(self):
        data = bytearray(encode_message(KeepAliveMessage()))
        data[0] = 0
        with pytest.raises(WireError):
            decode_message(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(WireError):
            decode_message(b"\xff" * 10)

    def test_truncated_body(self):
        data = encode_message(
            UpdateMessage(withdrawn=(Prefix.parse("10.0.0.0/8"),))
        )
        with pytest.raises(WireError):
            decode_message(data[:-1])

    def test_unknown_type(self):
        data = bytearray(encode_message(KeepAliveMessage()))
        data[18] = 9
        with pytest.raises(WireError):
            decode_message(bytes(data))

    def test_stream_of_messages(self):
        msgs = [
            KeepAliveMessage(),
            UpdateMessage(withdrawn=(Prefix.parse("10.0.0.0/8"),)),
            KeepAliveMessage(),
        ]
        stream = b"".join(encode_message(m) for m in msgs)
        decoded = []
        offset = 0
        while offset < len(stream):
            msg, used = decode_message(stream[offset:])
            decoded.append(msg)
            offset += used
        assert decoded == msgs


# -- property-based fuzz --------------------------------------------------

attr_strategy = st.builds(
    PathAttributes,
    as_path=st.builds(
        AsPath, st.lists(st.integers(1, 65535), min_size=1, max_size=10)
    ),
    next_hop=st.integers(0, 2**32 - 1),
    origin=st.sampled_from(list(Origin)),
    med=st.one_of(st.none(), st.integers(0, 2**32 - 1)),
    local_pref=st.one_of(st.none(), st.integers(0, 2**32 - 1)),
    communities=st.frozensets(st.integers(0, 2**32 - 1), max_size=6),
    atomic_aggregate=st.booleans(),
    aggregator=st.one_of(
        st.none(),
        st.tuples(st.integers(1, 65535), st.integers(0, 2**32 - 1)),
    ),
)

update_strategy = st.builds(
    UpdateMessage,
    withdrawn=st.lists(prefixes(), max_size=10, unique=True).map(tuple),
    announced=st.lists(prefixes(), min_size=1, max_size=10, unique=True).map(
        tuple
    ),
    attributes=attr_strategy,
)


@settings(max_examples=80)
@given(update_strategy)
def test_update_roundtrip_property(msg):
    assert roundtrip(msg) == msg


@settings(max_examples=40)
@given(st.binary(min_size=0, max_size=60))
def test_decoder_never_crashes_on_garbage(data):
    try:
        decode_message(data)
    except WireError:
        pass  # rejecting is fine; raising anything else is not
