"""Seeded round-trip property tests for the codecs and the AS-path
regex engine.

Wire/MRT: encode → decode → encode must reproduce identical bytes
(the codec is canonical — there is exactly one encoding of a message),
and decode → encode → decode identical values.  AS-path regexes:
parse → render (``.pattern``) → parse must yield an engine that
accepts exactly the same paths.
"""

import io
import random

import pytest

from repro.bgp.aspath_regex import AsPathRegexError, compile_regex
from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.messages import (
    KeepAliveMessage,
    NotificationCode,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.wire import decode_message, encode_message
from repro.collector import mrt
from repro.net.prefix import Prefix
from repro.verify.streams import fuzz_stream

FUZZ_SEEDS = range(25)


def random_prefix(rng):
    length = rng.choice((8, 16, 20, 24, 28, 32))
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    return Prefix(rng.getrandbits(32) & mask, length)


def random_attributes(rng):
    return PathAttributes(
        as_path=AsPath(
            tuple(rng.randrange(1, 65536) for _ in range(rng.randint(1, 6)))
        ),
        next_hop=rng.getrandbits(32),
        origin=rng.choice(tuple(Origin)),
        med=rng.choice((None, rng.randrange(0, 1 << 32))),
        local_pref=rng.choice((None, rng.randrange(0, 1 << 32))),
        communities=frozenset(
            rng.getrandbits(32) for _ in range(rng.randint(0, 3))
        ),
        atomic_aggregate=rng.random() < 0.2,
        aggregator=(
            (rng.randrange(1, 65536), rng.getrandbits(32))
            if rng.random() < 0.2
            else None
        ),
    )


def random_message(rng):
    kind = rng.randrange(4)
    if kind == 0:
        return OpenMessage(
            asn=rng.randrange(1, 65536),
            hold_time=float(rng.randrange(0, 65536)),
            bgp_identifier=rng.getrandbits(32),
        )
    if kind == 1:
        return KeepAliveMessage()
    if kind == 2:
        return NotificationMessage(
            code=rng.choice(tuple(NotificationCode)),
            subcode=rng.randrange(0, 256),
        )
    if rng.random() < 0.5:
        return UpdateMessage(
            withdrawn=tuple(
                sorted(random_prefix(rng) for _ in range(rng.randint(1, 4)))
            )
        )
    return UpdateMessage(
        announced=tuple(
            sorted(random_prefix(rng) for _ in range(rng.randint(1, 4)))
        ),
        attributes=random_attributes(rng),
    )


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_wire_encode_decode_encode_identical_bytes(seed):
    rng = random.Random(seed)
    for _ in range(40):
        message = random_message(rng)
        wire = encode_message(message)
        decoded, consumed = decode_message(wire)
        assert consumed == len(wire)
        assert decoded == message
        assert encode_message(decoded) == wire


def quantize_time(time):
    """The codec's microsecond quantization (its timestamp field is
    seconds + microseconds, so sub-µs float noise cannot survive)."""
    seconds = int(time)
    microseconds = int(round((time - seconds) * 1_000_000))
    if microseconds == 1_000_000:
        seconds += 1
        microseconds = 0
    return seconds + microseconds / 1_000_000


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_mrt_write_read_write_identical_bytes(seed):
    records = fuzz_stream(seed, n_records=80).records
    first = io.BytesIO()
    mrt.write_records(first, records)
    decoded = list(mrt.read_records(io.BytesIO(first.getvalue())))
    assert len(decoded) == len(records)
    for got, sent in zip(decoded, records):
        assert got.time == quantize_time(sent.time)
        assert (got.peer_id, got.peer_asn, got.prefix, got.kind,
                got.attributes) == (sent.peer_id, sent.peer_asn,
                                    sent.prefix, sent.kind,
                                    sent.attributes)
    # Re-encoding the decoded stream is byte-identical (the decoded
    # times are exactly representable, so the round trip is a fixpoint).
    second = io.BytesIO()
    mrt.write_records(second, decoded)
    assert second.getvalue() == first.getvalue()


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_mrt_columnar_write_matches_streaming_write(seed):
    from repro.core.columns import RecordColumns

    records = fuzz_stream(seed, n_records=80).records
    streaming = io.BytesIO()
    mrt.write_records(streaming, records)
    columnar = io.BytesIO()
    mrt.write_columns(columnar, RecordColumns.from_records(records))
    assert columnar.getvalue() == streaming.getvalue()


# -- AS-path regex round trips ----------------------------------------------

_VOCAB = (701, 1239, 3561, 65000, 7)


def random_pattern(rng, depth=0):
    """Compose a random router-style pattern from the grammar."""
    pieces = []
    for _ in range(rng.randint(1, 4)):
        roll = rng.random()
        if roll < 0.35:
            piece = str(rng.choice(_VOCAB))
        elif roll < 0.5:
            piece = "."
        elif roll < 0.6:
            piece = "_"
        elif roll < 0.75:
            members = rng.sample(_VOCAB, rng.randint(1, 3))
            piece = "[" + " ".join(str(m) for m in members) + "]"
        elif depth < 2:
            inner = random_pattern(rng, depth + 1)
            if rng.random() < 0.4:
                inner = f"{inner}|{random_pattern(rng, depth + 1)}"
            piece = f"({inner})"
        else:
            piece = str(rng.choice(_VOCAB))
        if piece not in ("_",) and rng.random() < 0.3:
            piece += rng.choice("*+?")
        pieces.append(piece)
    pattern = "".join(pieces)
    if rng.random() < 0.3:
        pattern = "^" + pattern
    if rng.random() < 0.3:
        pattern = pattern + "$"
    return pattern


def random_path(rng):
    return AsPath(
        tuple(
            rng.choice(_VOCAB + (9999,))
            for _ in range(rng.randint(1, 6))
        )
    )


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_regex_parse_render_parse_same_language(seed):
    rng = random.Random(seed)
    for _ in range(20):
        pattern = random_pattern(rng)
        try:
            first = compile_regex(pattern)
        except AsPathRegexError:
            continue  # composition produced an invalid pattern — fine
        # Render is the stored pattern; re-parsing it must give an
        # engine accepting exactly the same paths.
        second = compile_regex(first.pattern)
        assert first.pattern == second.pattern
        for _ in range(30):
            path = random_path(rng)
            assert first.search(path) == second.search(path)
            assert first.match_full(path) == second.match_full(path)


def test_regex_render_is_input_pattern():
    assert compile_regex("_701_").pattern == "_701_"
    assert compile_regex("^1239 .* 701$").pattern == "^1239 .* 701$"
