"""Edge-case and differential tests across the substrates."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.aspath_regex import compile_regex
from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import OpenMessage, UpdateMessage
from repro.bgp.session import ActionKind, PeeringSession
from repro.bgp.wire import decode_message, encode_message
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.timers import MraiBatcher

P = Prefix.parse


class TestWireExtendedLength:
    def test_large_communities_attribute_uses_extended_length(self):
        """An attribute over 255 bytes exercises the extended-length
        encoding path (70 communities = 280 bytes)."""
        attrs = PathAttributes(
            as_path=AsPath((701,)),
            next_hop=1,
            communities=frozenset(range(1, 71)),
        )
        message = UpdateMessage(announced=(P("10.0.0.0/8"),), attributes=attrs)
        decoded, _ = decode_message(encode_message(message))
        assert decoded == message
        assert len(decoded.attributes.communities) == 70

    def test_long_as_path_roundtrip(self):
        """A heavily prepended path (100 hops = 200 bytes, near the
        one-byte length limit) survives."""
        attrs = PathAttributes(
            as_path=AsPath((701,) * 99 + (3561,)), next_hop=1
        )
        message = UpdateMessage(announced=(P("10.0.0.0/8"),), attributes=attrs)
        decoded, _ = decode_message(encode_message(message))
        assert decoded.attributes.as_path == attrs.as_path

    def test_very_long_as_path_extended(self):
        """A 140-hop path crosses 255 attribute bytes -> extended."""
        attrs = PathAttributes(
            as_path=AsPath((701,) * 139 + (3561,)), next_hop=1
        )
        message = UpdateMessage(announced=(P("10.0.0.0/8"),), attributes=attrs)
        decoded, _ = decode_message(encode_message(message))
        assert decoded.attributes.as_path.hop_count == 140


class TestSessionTransportFailure:
    def test_established_session_reports_down(self):
        session = PeeringSession(local_asn=1, peer_asn=2)
        session.start(0.0)
        session.on_open(0.0, OpenMessage(asn=2))
        session.on_keepalive(0.0)
        assert session.is_established
        actions = session.on_transport_failure(1.0)
        assert [a.kind for a in actions] == [ActionKind.SESSION_DOWN]
        assert not session.is_established
        assert session.next_deadline() is None

    def test_unestablished_session_fails_quietly(self):
        session = PeeringSession(local_asn=1, peer_asn=2)
        session.start(0.0)
        assert session.on_transport_failure(1.0) == []


class TestMraiBatcherLifecycle:
    def test_stop_clears_pending(self):
        engine = Engine()
        flushes = []
        batcher = MraiBatcher(engine, flushes.append, interval=10.0)
        batcher.start()
        batcher.mark_dirty("p")
        batcher.stop()
        engine.run_until(100.0)
        assert flushes == []
        assert batcher.pending == 0

    def test_restart_after_stop(self):
        engine = Engine()
        flushes = []
        batcher = MraiBatcher(engine, flushes.append, interval=10.0)
        batcher.start()
        batcher.stop()
        batcher.start()
        batcher.mark_dirty("q")
        engine.run_until(25.0)
        assert flushes == [{"q"}]


# -- differential: AS-path regex vs Python re over a token encoding -----

def _to_string(path):
    """Encode a path so each AS is an unambiguous token."""
    return "".join(f"<{a}>" for a in path)


def _translate(pattern_atoms):
    """Translate a list of (atom, quantifier) pairs to both dialects."""
    ours = []
    theirs = []
    for atom, quant in pattern_atoms:
        if atom == ".":
            ours.append("." + quant)
            theirs.append(r"(?:<\d+>)" + quant)
        else:
            ours.append(str(atom) + quant)
            theirs.append(f"(?:<{atom}>)" + quant)
    return "^" + " ".join(ours) + "$", "^" + "".join(theirs) + "$"


atoms = st.tuples(
    st.one_of(st.just("."), st.integers(1, 5)),
    st.sampled_from(["", "*", "+", "?"]),
)


@settings(max_examples=120)
@given(
    st.lists(atoms, min_size=1, max_size=4),
    st.lists(st.integers(1, 5), max_size=6),
)
def test_regex_differential_against_re(pattern_atoms, path):
    ours_pattern, re_pattern = _translate(pattern_atoms)
    ours = compile_regex(ours_pattern).search(tuple(path))
    theirs = re.fullmatch(
        re_pattern.strip("^$"), _to_string(path)
    ) is not None
    assert ours == theirs, (ours_pattern, re_pattern, path)


class TestPrefixEdgeCases:
    def test_slash_31_and_32(self):
        p31 = P("10.0.0.0/31")
        assert p31.num_addresses == 2
        halves = list(p31.subnets())
        assert [str(h) for h in halves] == ["10.0.0.0/32", "10.0.0.1/32"]

    def test_whole_space_subnet_iteration_bounded(self):
        root = P("0.0.0.0/0")
        assert len(list(root.subnets(4))) == 16

    def test_covers_address_boundaries(self):
        p = P("10.0.0.0/24")
        assert p.covers_address(p.network)
        assert p.covers_address(p.broadcast)
        assert not p.covers_address(p.broadcast + 1)
        assert not p.covers_address(p.network - 1)
