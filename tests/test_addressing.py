"""Unit tests for repro.net.addressing."""

import random

import pytest

from repro.net.addressing import (
    AddressExhausted,
    AddressPlan,
    ProviderBlockAllocator,
    SwampAllocator,
    provider_allocator,
)
from repro.net.aggregation import aggregation_ratio
from repro.net.prefix import Prefix


def P(text):
    return Prefix.parse(text)


class TestProviderBlockAllocator:
    def test_sequential_disjoint(self):
        alloc = ProviderBlockAllocator(P("10.0.0.0/8"))
        a = alloc.allocate(16)
        b = alloc.allocate(16)
        assert a == P("10.0.0.0/16")
        assert b == P("10.1.0.0/16")
        assert not a.overlaps(b)

    def test_alignment_after_smaller_alloc(self):
        alloc = ProviderBlockAllocator(P("10.0.0.0/8"))
        alloc.allocate(24)
        b = alloc.allocate(16)
        # /16 must be aligned, so it skips to the next /16 boundary.
        assert b == P("10.1.0.0/16")

    def test_exhaustion(self):
        alloc = ProviderBlockAllocator(P("10.0.0.0/24"))
        alloc.allocate(25)
        alloc.allocate(25)
        with pytest.raises(AddressExhausted):
            alloc.allocate(25)

    def test_rejects_wider_than_block(self):
        alloc = ProviderBlockAllocator(P("10.0.0.0/16"))
        with pytest.raises(AddressExhausted):
            alloc.allocate(8)

    def test_all_inside_block(self):
        block = P("10.0.0.0/8")
        alloc = ProviderBlockAllocator(block)
        for _ in range(50):
            assert alloc.allocate(20) in block

    def test_remaining_shrinks(self):
        alloc = ProviderBlockAllocator(P("10.0.0.0/8"))
        before = alloc.remaining_addresses
        alloc.allocate(16)
        assert alloc.remaining_addresses == before - (1 << 16)

    def test_allocate_many(self):
        alloc = ProviderBlockAllocator(P("10.0.0.0/8"))
        got = alloc.allocate_many(18, 5)
        assert len({g.network for g in got}) == 5


class TestSwampAllocator:
    def test_deterministic_for_seed(self):
        a = SwampAllocator(random.Random(7)).allocate_many(20)
        b = SwampAllocator(random.Random(7)).allocate_many(20)
        assert a == b

    def test_all_are_24s_in_swamp(self):
        swamp_firsts = {192, 193, 198, 199, 202, 204}
        for p in SwampAllocator(random.Random(1)).allocate_many(100):
            assert p.length == 24
            assert (p.network >> 24) in swamp_firsts

    def test_no_duplicates(self):
        got = SwampAllocator(random.Random(3)).allocate_many(5000)
        assert len(set(got)) == len(got)

    def test_swamp_aggregates_poorly(self):
        got = SwampAllocator(random.Random(5)).allocate_many(200)
        # Scattered /24s should barely aggregate at all.
        assert aggregation_ratio(got) > 0.9


class TestAddressPlan:
    def test_announced_union_sorted_unique(self):
        plan = AddressPlan(
            aggregates=[P("10.0.0.0/8")],
            specifics=[P("192.0.2.0/24"), P("10.0.0.0/8")],
        )
        assert plan.announced == [P("10.0.0.0/8"), P("192.0.2.0/24")]
        assert plan.prefix_count == 2

    def test_empty_plan(self):
        plan = AddressPlan()
        assert plan.announced == []
        assert plan.prefix_count == 0


class TestProviderAllocatorFactory:
    def test_distinct_blocks_for_distinct_indices(self):
        blocks = [provider_allocator(i).block for i in range(30)]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.overlaps(b), (a, b)

    def test_deterministic(self):
        assert provider_allocator(3).block == provider_allocator(3).block

    def test_overflow_providers_get_slash10(self):
        idx = 15  # beyond the 12 base /8 blocks
        assert provider_allocator(idx).block.length == 10
