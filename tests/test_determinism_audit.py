"""Static determinism audit of ``src/repro``.

The verify layer's whole premise — golden corpora, differential
digests, chaos resume checks — is that every result is a pure function
of explicit seeds and configs.  This audit scans the source tree for
the two ways that premise silently breaks:

1. module-level ``random.*`` calls (the shared global RNG: any caller
   perturbs every other caller's stream) — all randomness must flow
   through an explicitly seeded ``random.Random`` / ``default_rng``;
2. wall-clock reads (``time.time``, ``datetime.now``, ...) feeding
   simulated or recorded data — real time may only be used for
   progress/elapsed display, never for results.

New legitimate uses (display-only timing) go in the allowlist below,
with a justification.
"""

import re
from pathlib import Path

SRC = Path(__file__).parent.parent / "src" / "repro"

#: (path relative to src/repro, pattern) pairs that are allowed:
#: display-only elapsed-time measurement, never part of a result.
WALL_CLOCK_ALLOWLIST = {
    ("__main__.py", "time.time"),  # "[... finished in Ns]" progress lines
    ("campaign/runner.py", "time.perf_counter"),  # RunResult.elapsed
}

# Module-level RNG: `random.foo(...)` for any function on the module,
# excluding the Random/SystemRandom constructors (seeded instances are
# exactly what we want) and `np.random.default_rng` (matched via the
# preceding-dot check below).
GLOBAL_RANDOM = re.compile(r"\brandom\.(?!Random\b|SystemRandom\b)[a-z_]+\s*\(")

WALL_CLOCK = re.compile(
    r"\btime\.time\s*\(|\btime\.perf_counter\s*\(|\btime\.monotonic\s*\(|"
    r"\bdatetime\.(?:now|today|utcnow)\s*\(|\bdate\.today\s*\("
)


def _source_files():
    files = sorted(SRC.rglob("*.py"))
    assert len(files) > 30, "audit is not seeing the source tree"
    return files


def _strip_comments(line):
    return line.split("#", 1)[0]


def test_no_module_level_random_calls():
    offenders = []
    for path in _source_files():
        for number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            code = _strip_comments(line)
            match = GLOBAL_RANDOM.search(code)
            if match is None:
                continue
            # `np.random.default_rng(...)` / `numpy.random...` are
            # seeded generator constructors, not the global stream.
            prefix = code[: match.start()]
            if prefix.rstrip().endswith("."):
                continue
            offenders.append(
                f"{path.relative_to(SRC)}:{number}: {line.strip()}"
            )
    assert not offenders, (
        "module-level random.* calls found (use a seeded "
        "random.Random instance):\n" + "\n".join(offenders)
    )


def test_wall_clock_only_in_allowlisted_display_code():
    offenders = []
    for path in _source_files():
        relative = str(path.relative_to(SRC))
        for number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            code = _strip_comments(line)
            match = WALL_CLOCK.search(code)
            if match is None:
                continue
            call = match.group(0).rstrip(" (")
            if (relative, call) in WALL_CLOCK_ALLOWLIST:
                continue
            offenders.append(f"{relative}:{number}: {line.strip()}")
    assert not offenders, (
        "wall-clock reads outside the display-only allowlist "
        "(results must be functions of seeds, not real time):\n"
        + "\n".join(offenders)
    )


def test_allowlist_entries_still_exist():
    # Dead allowlist entries hide real regressions behind stale grants.
    for relative, call in WALL_CLOCK_ALLOWLIST:
        text = (SRC / relative).read_text()
        assert call in text, (
            f"allowlist entry ({relative}, {call}) no longer matches "
            "anything — remove it"
        )


def test_numpy_rng_is_seeded():
    # The one numpy RNG in the tree must stay an explicit default_rng(seed).
    ssa = (SRC / "analysis" / "ssa.py").read_text()
    assert "default_rng(seed)" in ssa
