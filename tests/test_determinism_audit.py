"""Static determinism audit of ``src/repro`` — now AST-powered.

Historically this file carried a regex scanner for global ``random.*``
calls and wall-clock reads.  The scanner body moved into the
``repro.lint`` subsystem (DET001/DET002 and friends), which sees
scopes, import aliases, and iteration order that regexes cannot:
``from random import randint as ri`` is caught, a pattern inside a
string literal is not.  The old test names survive so any tooling or
muscle memory pointing here still runs the (now stronger) checks;
``tests/test_lint.py`` holds the full-repo gate and the per-rule
fixture tests.
"""

from pathlib import Path

from repro.lint import LintEngine, rules_by_id

ROOT = Path(__file__).parent.parent
SRC = ROOT / "src" / "repro"


def _findings(*rule_ids):
    engine = LintEngine(ROOT, rules=rules_by_id(*rule_ids))
    report = engine.lint_paths([SRC])
    assert report.files > 30, "audit is not seeing the source tree"
    return [f for f in report.findings if f.rule in rule_ids]


def test_no_module_level_random_calls():
    findings = _findings("DET001")
    assert not findings, (
        "module-level random.* calls found (use a seeded "
        "random.Random instance):\n"
        + "\n".join(f.render() for f in findings)
    )


def test_wall_clock_only_in_pragma_justified_display_code():
    # The old WALL_CLOCK_ALLOWLIST table became inline pragmas with
    # justifications (`# lint: allow[DET002] -- ...`), checked for
    # staleness by LINT000 instead of a bespoke test here.
    findings = _findings("DET002")
    assert not findings, (
        "wall-clock reads without a justified display-only pragma "
        "(results must be functions of seeds, not real time):\n"
        + "\n".join(f.render() for f in findings)
    )


def test_numpy_rng_is_seeded():
    # The one numpy RNG in the tree must stay an explicit default_rng(seed).
    ssa = (SRC / "analysis" / "ssa.py").read_text()
    assert "default_rng(seed)" in ssa
