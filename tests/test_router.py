"""Integration tests for the router model: propagation, statefulness,
pathology genesis, CPU coupling, and crashes."""

import random

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.collector.log import MemoryLog
from repro.core.classifier import classify
from repro.core.instability import CategoryCounts
from repro.core.taxonomy import UpdateCategory
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.link import Link
from repro.sim.router import CpuModel, RouteCache, Router, connect
from repro.sim.routeserver import RouteServer

P = Prefix.parse


def make_pair(engine=None, **kwargs_b):
    """Two connected routers; returns (engine, a, b)."""
    engine = engine or Engine()
    a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
    b = Router(engine, asn=200, router_id=2, mrai_interval=5.0, **kwargs_b)
    connect(a, b)
    engine.run_until(30.0)
    return engine, a, b


class TestSessionEstablishment:
    def test_sessions_come_up(self):
        _, a, b = make_pair()
        assert a.sessions[2].is_established
        assert b.sessions[1].is_established

    def test_keepalives_flow(self):
        engine, a, b = make_pair()
        engine.run_until(400.0)
        assert a.sessions[2].is_established
        assert a.keepalives_sent > 5


class TestRoutePropagation:
    def test_originated_route_reaches_peer(self):
        engine, a, b = make_pair()
        a.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        best = b.loc_rib.best(P("10.0.0.0/8"))
        assert best is not None
        assert tuple(best.attributes.as_path) == (100,)
        assert best.attributes.next_hop == 1

    def test_withdrawal_propagates(self):
        engine, a, b = make_pair()
        a.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        a.withdraw_origin(P("10.0.0.0/8"))
        engine.run_until(120.0)
        assert b.loc_rib.best(P("10.0.0.0/8")) is None

    def test_transit_propagation_three_hops(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
        c = Router(engine, asn=300, router_id=3, mrai_interval=5.0)
        connect(a, b)
        connect(b, c)
        engine.run_until(30.0)
        a.originate(P("10.0.0.0/8"))
        engine.run_until(90.0)
        best = c.loc_rib.best(P("10.0.0.0/8"))
        assert best is not None
        assert tuple(best.attributes.as_path) == (200, 100)

    def test_loop_detection_blocks_own_as(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
        c = Router(engine, asn=300, router_id=3, mrai_interval=5.0)
        # Triangle: a-b, b-c, c-a.
        connect(a, b)
        connect(b, c)
        connect(c, a)
        engine.run_until(30.0)
        a.originate(P("10.0.0.0/8"))
        engine.run_until(200.0)
        # Converged: nobody holds a route whose path contains their AS.
        for router in (a, b, c):
            for route in router.loc_rib.routes():
                assert not route.attributes.as_path.contains_loop(router.asn)

    def test_table_dump_on_session_up(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        a.originate(P("10.0.0.0/8"))
        a.originate(P("11.0.0.0/8"))
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
        connect(a, b)
        engine.run_until(60.0)
        assert len(b.loc_rib) == 2

    def test_best_path_selection_across_peers(self):
        engine = Engine()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        middle = Router(engine, asn=200, router_id=2, mrai_interval=2.0)
        observer = Router(engine, asn=400, router_id=4, mrai_interval=2.0)
        connect(origin, middle)
        connect(origin, observer)
        connect(middle, observer)
        engine.run_until(30.0)
        origin.originate(P("10.0.0.0/8"))
        engine.run_until(120.0)
        best = observer.loc_rib.best(P("10.0.0.0/8"))
        # Direct path (100) beats transit (200 100).
        assert tuple(best.attributes.as_path) == (100,)


class TestStatefulVsStateless:
    def _exchange_with_server(self, stateless):
        """Origin -> middle(stateless?) -> route server; returns sink."""
        engine = Engine()
        sink = MemoryLog()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        middle = Router(
            engine, asn=200, router_id=2, mrai_interval=2.0,
            stateless_bgp=stateless,
        )
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(origin, middle)
        connect(middle, server)
        engine.run_until(30.0)
        return engine, origin, middle, server, sink

    def test_stateless_emits_wwdups(self):
        engine, origin, middle, server, sink = self._exchange_with_server(
            stateless=True
        )
        origin.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        # Flap repeatedly with gaps longer than MRAI so each W flushes.
        for i in range(5):
            engine.schedule(i * 10.0, origin.flap_origin, P("10.0.0.0/8"), 4.0)
        engine.run_until(200.0)
        counts = CategoryCounts()
        counts.extend(classify(sink.sorted_by_time()))
        # Stateless middle withdraws to the server even when the state
        # it advertised is already gone -> some withdrawals are WWDup.
        assert counts[UpdateCategory.WWDUP] >= 0  # sanity
        assert counts.total > 0

    def test_stateful_suppresses_duplicate_announcements(self):
        engine, origin, middle, server, sink = self._exchange_with_server(
            stateless=False
        )
        origin.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        before = middle.suppressed_outputs
        # Re-announce identical route (AADup at origin's output is
        # internal; middle sees duplicate and must not forward it).
        origin.originate(P("10.0.0.0/8"))
        engine.run_until(120.0)
        counts = CategoryCounts()
        counts.extend(classify(sink.sorted_by_time()))
        assert counts[UpdateCategory.AADUP] == 0
        assert middle.suppressed_outputs >= before

    def _a1_a2_a1_oscillation(self, stateless):
        """The paper's §4.2 mechanism: a best-route flip A1→A2→A1
        inside one (long) MRAI interval at the middle router."""
        engine = Engine()
        sink = MemoryLog()
        primary = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        backup = Router(engine, asn=300, router_id=3, mrai_interval=2.0)
        middle = Router(
            engine, asn=200, router_id=2, mrai_interval=20.0,
            stateless_bgp=stateless,
        )
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(primary, middle)
        connect(backup, middle)
        connect(middle, server)
        engine.run_until(30.0)
        # Backup path is longer (prepend) so primary wins when present.
        from repro.bgp.attributes import AsPath, PathAttributes

        backup.originate(
            P("10.0.0.0/8"),
            PathAttributes(as_path=AsPath((300,)), next_hop=3),
        )
        primary.originate(P("10.0.0.0/8"))
        engine.run_until(100.0)  # fully converged: middle best = primary
        count_before = len(sink)
        # Flip to backup and back within middle's 20s MRAI window.
        start = engine.now
        primary.withdraw_origin(P("10.0.0.0/8"))
        engine.schedule(6.0, primary.originate, P("10.0.0.0/8"))
        engine.run_until(start + 100.0)
        counts = CategoryCounts()
        counts.extend(classify(sink.sorted_by_time()))
        return counts, len(sink) - count_before, middle

    def test_stateless_emits_aadup_on_a1_a2_a1(self):
        counts, new_records, middle = self._a1_a2_a1_oscillation(
            stateless=True
        )
        assert counts[UpdateCategory.AADUP] >= 1

    def test_stateful_suppresses_a1_a2_a1(self):
        counts, new_records, middle = self._a1_a2_a1_oscillation(
            stateless=False
        )
        assert counts[UpdateCategory.AADUP] == 0
        assert middle.suppressed_outputs >= 1

    def test_stateless_withdrawal_to_unadvertised_peer(self):
        """The signature WWDup: a stateless router withdraws a prefix
        to a peer it never announced it to."""
        engine = Engine()
        sink = MemoryLog()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        # Stateless middle with an export policy that denies the prefix:
        # it never announces to the server, yet will withdraw to it.
        from repro.bgp.policy import (
            MatchCondition,
            PolicyTerm,
            RouteMap,
        )

        deny_ten = RouteMap(
            [
                PolicyTerm(
                    MatchCondition(prefixes=(P("10.0.0.0/8"),)), permit=False
                ),
                PolicyTerm(),
            ]
        )
        middle = Router(
            engine, asn=200, router_id=2, mrai_interval=2.0,
            stateless_bgp=True, export_policy=deny_ten,
        )
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(origin, middle)
        connect(middle, server)
        engine.run_until(30.0)
        origin.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        origin.withdraw_origin(P("10.0.0.0/8"))
        engine.run_until(120.0)
        counts = CategoryCounts()
        counts.extend(classify(sink.sorted_by_time()))
        assert counts[UpdateCategory.WWDUP] >= 1

    def test_mrai_collapse_hides_fast_flap_from_stateful(self):
        """W,A inside one MRAI interval on a *stateful* router nets out
        to nothing (no update crosses)."""
        engine = Engine()
        sink = MemoryLog()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=20.0)
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(origin, server)
        engine.run_until(45.0)
        origin.originate(P("10.0.0.0/8"))
        engine.run_until(81.0)  # announced and flushed
        count_before = len(sink)
        # Flap down-and-up within one 20s interval.
        origin.withdraw_origin(P("10.0.0.0/8"))
        engine.schedule(1.0, origin.originate, P("10.0.0.0/8"))
        engine.run_until(160.0)
        assert len(sink) == count_before  # nothing new crossed


class TestLinkFailures:
    def test_link_down_drops_session_and_routes(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
        link = connect(a, b)
        engine.run_until(30.0)
        a.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        link.go_down()
        engine.run_until(61.0)
        assert not b.sessions[1].is_established
        assert b.loc_rib.best(P("10.0.0.0/8")) is None

    def test_link_recovery_reestablishes_and_relearns(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
        link = connect(a, b)
        engine.run_until(30.0)
        a.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        link.go_down()
        engine.run_until(70.0)
        link.go_up()
        engine.run_until(150.0)
        assert b.sessions[1].is_established
        assert b.loc_rib.best(P("10.0.0.0/8")) is not None


class TestCpuAndCrash:
    def test_cpu_backlog_grows_under_burst(self):
        engine = Engine()
        cpu = CpuModel(per_update=0.05)
        a = Router(engine, asn=100, router_id=1, mrai_interval=1.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=1.0, cpu=cpu)
        connect(a, b)
        engine.run_until(30.0)
        for i in range(100):
            a.originate(Prefix((10 << 24) + i * 65536, 16))
        engine.run_until(32.0)
        assert b.cpu_backlog > 0.0

    def test_crash_on_queue_overflow_and_reboot(self):
        engine = Engine()
        cpu = CpuModel(per_update=0.5)
        a = Router(engine, asn=100, router_id=1, mrai_interval=1.0)
        b = Router(
            engine, asn=200, router_id=2, mrai_interval=1.0,
            cpu=cpu, crash_queue_limit=5, reboot_delay=20.0,
        )
        connect(a, b)
        engine.run_until(30.0)
        for i in range(50):
            a.originate(Prefix((10 << 24) + i * 65536, 16))
        engine.run_until(40.0)
        assert b.crash_count >= 1
        # Calm the storm source so the reboot's table dump fits: with
        # the full 50-route dump still pending, b would crash-loop
        # (exactly the paper's flap-storm dynamic).
        for i in range(48):
            a.withdraw_origin(Prefix((10 << 24) + i * 65536, 16))
        engine.run_until(300.0)
        # Rebooted and re-peered.
        assert not b.crashed
        assert b.sessions[1].is_established

    def test_crash_loop_without_burst_relief(self):
        """If the heavy table persists, the rebooting router keeps
        crashing on the re-peering dump — the storm sustains itself."""
        engine = Engine()
        cpu = CpuModel(per_update=0.5)
        a = Router(engine, asn=100, router_id=1, mrai_interval=1.0)
        b = Router(
            engine, asn=200, router_id=2, mrai_interval=1.0,
            cpu=cpu, crash_queue_limit=5, reboot_delay=20.0,
        )
        connect(a, b)
        engine.run_until(30.0)
        for i in range(50):
            a.originate(Prefix((10 << 24) + i * 65536, 16))
        engine.run_until(400.0)
        assert b.crash_count >= 3

    def test_crashed_router_drops_messages(self):
        engine = Engine()
        b = Router(engine, asn=200, router_id=2)
        b.crashed = True
        b._on_link_message(1, object())  # must not raise

    def test_hold_timer_fires_when_peer_crashes(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0,
                   hold_time=30.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0,
                   hold_time=30.0, reboot_delay=500.0)
        connect(a, b)
        engine.run_until(30.0)
        assert a.sessions[2].is_established
        b._crash()
        engine.run_until(engine.now + 40.0)
        assert not a.sessions[2].is_established


class TestRouteCache:
    def test_hits_and_misses(self):
        cache = RouteCache(capacity=2)
        resolved = []

        def resolve(p):
            resolved.append(p)
            return 42

        p1, p2, p3 = P("10.0.0.0/8"), P("11.0.0.0/8"), P("12.0.0.0/8")
        assert cache.lookup(p1, resolve) == 42
        assert cache.lookup(p1, resolve) == 42
        assert cache.hits == 1 and cache.misses == 1
        cache.lookup(p2, resolve)
        cache.lookup(p3, resolve)  # evicts p1 (FIFO)
        cache.lookup(p1, resolve)
        assert cache.misses == 4

    def test_invalidation_counts(self):
        cache = RouteCache()
        cache.lookup(P("10.0.0.0/8"), lambda p: 1)
        cache.invalidate(P("10.0.0.0/8"))
        cache.invalidate(P("10.0.0.0/8"))  # second is a no-op
        assert cache.invalidations == 1

    def test_router_invalidates_cache_on_change(self):
        engine = Engine()
        cache = RouteCache()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0,
                   cache=cache)
        connect(a, b)
        engine.run_until(30.0)
        a.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        assert b.forward_packet(P("10.0.0.0/8")) == 1
        assert cache.hits + cache.misses == 1
        a.withdraw_origin(P("10.0.0.0/8"))
        engine.run_until(120.0)
        assert cache.invalidations >= 1
        assert b.forward_packet(P("10.0.0.0/8")) is None

    def test_miss_rate(self):
        cache = RouteCache()
        assert cache.miss_rate == 0.0
        cache.lookup(P("10.0.0.0/8"), lambda p: 1)
        cache.lookup(P("10.0.0.0/8"), lambda p: 1)
        assert cache.miss_rate == 0.5


class TestRouteServer:
    def test_logs_announcements_and_withdrawals(self):
        engine = Engine()
        sink = MemoryLog()
        a = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(a, server)
        engine.run_until(30.0)
        a.originate(P("10.0.0.0/8"))
        engine.run_until(60.0)
        a.withdraw_origin(P("10.0.0.0/8"))
        engine.run_until(120.0)
        kinds = [r.kind.name for r in sink.sorted_by_time()]
        assert kinds == ["ANNOUNCE", "WITHDRAW"]
        assert all(r.peer_asn == 100 for r in sink)
        assert server.records_logged == 2

    def test_passive_server_never_advertises(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        server = RouteServer(engine, asn=65000, router_id=99)
        server.originate(P("192.0.2.0/24"))
        connect(a, server)
        engine.run_until(120.0)
        assert a.loc_rib.best(P("192.0.2.0/24")) is None

    def test_readvertising_server_relays(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=2.0)
        server = RouteServer(
            engine, asn=65000, router_id=99, readvertise=True,
            mrai_interval=2.0,
        )
        connect(a, server)
        connect(b, server)
        engine.run_until(30.0)
        a.originate(P("10.0.0.0/8"))
        engine.run_until(120.0)
        best = b.loc_rib.best(P("10.0.0.0/8"))
        assert best is not None
        assert 65000 in best.attributes.as_path


class TestRouteServerClientPolicies:
    def test_per_client_policy_views(self):
        """The Routing Arbiter service: each client gets its own
        post-policy view of the exchange."""
        from repro.bgp.policy import (
            MatchCondition,
            PolicyTerm,
            RouteMap,
        )

        engine = Engine()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        picky = Router(engine, asn=200, router_id=2, mrai_interval=2.0)
        open_client = Router(engine, asn=300, router_id=3, mrai_interval=2.0)
        server = RouteServer(
            engine, asn=65000, router_id=99, readvertise=True,
            mrai_interval=2.0,
        )
        # The picky client refuses anything transiting AS 100.
        server.set_client_policy(
            picky.router_id,
            RouteMap(
                [
                    PolicyTerm(
                        MatchCondition(as_path_regex="_100_"), permit=False
                    ),
                    PolicyTerm(),
                ]
            ),
        )
        connect(origin, server)
        connect(picky, server)
        connect(open_client, server)
        engine.run_until(30.0)
        origin.originate(P("10.0.0.0/8"))
        engine.run_until(120.0)
        assert open_client.loc_rib.best(P("10.0.0.0/8")) is not None
        assert picky.loc_rib.best(P("10.0.0.0/8")) is None

    def test_client_policy_attribute_rewrite(self):
        from repro.bgp.policy import Action, PolicyTerm, RouteMap

        engine = Engine()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        client = Router(engine, asn=300, router_id=3, mrai_interval=2.0)
        server = RouteServer(
            engine, asn=65000, router_id=99, readvertise=True,
            mrai_interval=2.0,
            client_policies={
                3: RouteMap([PolicyTerm(action=Action(set_med=77))])
            },
        )
        connect(origin, server)
        connect(client, server)
        engine.run_until(30.0)
        origin.originate(P("10.0.0.0/8"))
        engine.run_until(120.0)
        best = client.loc_rib.best(P("10.0.0.0/8"))
        assert best is not None
        assert best.attributes.med == 77


class TestRouterAggregation:
    def _setup(self):
        engine = Engine()
        provider = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        observer = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
        block = P("172.16.0.0/16")
        components = list(block.subnets(24))[:8]
        for prefix in components:
            provider.originate(prefix)
        provider.configure_aggregate(block)
        connect(provider, observer)
        engine.run_until(60.0)
        return engine, provider, observer, block, components

    def test_only_aggregate_visible(self):
        engine, provider, observer, block, components = self._setup()
        best = observer.loc_rib.best(block)
        assert best is not None
        assert best.attributes.atomic_aggregate
        assert best.attributes.aggregator == (100, 1)
        for component in components:
            assert observer.loc_rib.best(component) is None

    def test_component_flap_invisible_outside(self):
        engine, provider, observer, block, components = self._setup()
        received_before = observer.updates_received
        # One component flaps; the aggregate holds (others still up).
        provider.withdraw_origin(components[0])
        engine.run_until(engine.now + 60.0)
        provider.originate(components[0])
        engine.run_until(engine.now + 60.0)
        assert observer.updates_received == received_before
        assert observer.loc_rib.best(block) is not None

    def test_aggregate_withdrawn_when_all_components_gone(self):
        engine, provider, observer, block, components = self._setup()
        for component in components:
            provider.withdraw_origin(component)
        engine.run_until(engine.now + 60.0)
        assert observer.loc_rib.best(block) is None
        # And it returns when any component does.
        provider.originate(components[3])
        engine.run_until(engine.now + 60.0)
        assert observer.loc_rib.best(block) is not None

    def test_uncovered_prefixes_unaffected(self):
        engine, provider, observer, block, components = self._setup()
        outside = P("198.51.100.0/24")
        provider.originate(outside)
        engine.run_until(engine.now + 60.0)
        assert observer.loc_rib.best(outside) is not None
