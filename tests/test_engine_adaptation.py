"""Adaptive scheduler tests: the calendar<->heap fallback.

The calendar queue is the wrong structure for dense *irregular*
timestamps (every bucket a singleton — one float heap push/pop plus a
dict insert/delete per event).  :class:`~repro.sim.engine.Engine`
therefore watches its drain: when a 512-event window retires mostly
singleton buckets it migrates the queue to a plain ``(time, seq,
handle)`` binary heap, and when a heap-mode window pops mostly
same-instant events it migrates back.  These tests pin the trip
points, verify migrations preserve exact firing order (differentially
against :class:`~repro.sim.refengine.ReferenceEngine`), and exercise
cancellation / reschedule / compaction while the fallback is active.
"""

import random

import pytest

from repro.sim.engine import _ADAPT_WINDOW, _TRIP_MARKS, Engine
from repro.sim.refengine import ReferenceEngine
from repro.verify.golden import FUZZ_SEEDS

#: Enough events to fill several adaptation windows.
_N = _ADAPT_WINDOW * 4


def _irregular_times(n, seed=1, start=0.0):
    """Strictly increasing irregular instants (all-singleton buckets)."""
    rng = random.Random(seed)
    times, t = [], start
    for _ in range(n):
        t += 0.001 + rng.random()
        times.append(t)
    return times


def test_trips_to_heap_on_dense_irregular_workload():
    engine = Engine()
    for t in _irregular_times(_N):
        engine.schedule_at(t, lambda: None)
    assert not engine._heap_mode
    engine.run()
    assert engine._heap_mode
    assert engine.events_processed == _N


def test_stays_calendar_on_cohort_workload():
    """Shared-instant buckets (the sync-population shape) must never
    trip the fallback: the singleton fraction stays near zero."""
    engine = Engine()
    for i in range(_N):
        engine.schedule_at(float(i % 16), lambda: None)
    engine.run()
    assert not engine._heap_mode
    assert engine.events_processed == _N


def test_trips_back_to_calendar():
    """After the irregular phase drains, a cohort phase pops mostly
    same-instant events and migrates the queue back."""
    engine = Engine()
    for t in _irregular_times(_N):
        engine.schedule_at(t, lambda: None)
    engine.run()
    assert engine._heap_mode
    base = engine.now + 1.0
    for i in range(_N):
        engine.schedule_at(base + float(i % 16), lambda: None)
    engine.run()
    assert not engine._heap_mode
    assert engine.events_processed == 2 * _N


def test_trip_point_threshold():
    """The documented trip fraction: > _TRIP_MARKS/_ADAPT_WINDOW of a
    window singleton trips; well under it does not."""
    assert 0.5 < _TRIP_MARKS / _ADAPT_WINDOW < 0.7

    def run_mix(singleton_fraction):
        engine = Engine()
        rng = random.Random(5)
        t = 0.0
        for _ in range(_N):
            if rng.random() < singleton_fraction:
                t += 0.01 + rng.random()
                engine.schedule_at(t, lambda: None)
            else:
                # A shared bucket of 8: one retire mark for 8 events.
                t += 0.01 + rng.random()
                for _ in range(8):
                    engine.schedule_at(t, lambda: None)
        engine.run()
        return engine._heap_mode

    assert run_mix(0.98)
    assert not run_mix(0.10)


def _drive_adaptive(engine_cls, seed):
    """A mixed workload dense enough to migrate at least once, with
    cancels and re-arms interleaved; returns the observable trace."""
    rng = random.Random(seed)
    engine = engine_cls()
    trace = []
    handles = []

    def record(tag):
        trace.append((round(engine.now, 9), tag))

    tag = 0
    for phase in range(6):
        irregular = phase % 2 == 0
        for _ in range(_ADAPT_WINDOW + 64):
            if irregular:
                delay = 0.001 + rng.random() * 3.0
            else:
                delay = float(rng.randrange(4))
            handles.append(engine.schedule(delay, record, tag))
            tag += 1
        for _ in range(rng.randrange(40, 120)):
            index = rng.randrange(len(handles))
            roll = rng.random()
            if roll < 0.5:
                handles[index].cancel()
            else:
                handles[index] = engine.reschedule(
                    handles[index], engine.now + rng.random() * 2.0
                )
        ran = engine.run_until(
            engine.now + 2.0, max_events=rng.choice((None, 100, 700))
        )
        trace.append(
            ("ran", ran, engine.pending, engine.next_event_time())
        )
    trace.append(("tail", engine.run()))
    trace.append(("final", engine.events_processed, round(engine.now, 9)))
    return engine, trace


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_adaptive_workload_matches_reference(seed):
    """Cancellation, reschedule-reuse, compaction, and both migration
    directions under load: identical traces on both engines."""
    calendar_engine, calendar_trace = _drive_adaptive(Engine, seed)
    _, reference_trace = _drive_adaptive(ReferenceEngine, seed)
    assert calendar_trace == reference_trace
    # The workload's irregular phases are dense enough that the
    # adaptive engine really did leave calendar mode at some point.
    assert calendar_engine.events_processed > 2 * _ADAPT_WINDOW


def test_cancellation_and_compaction_under_fallback():
    """Mass-cancel while in heap mode: dead entries are compacted
    away and the survivors fire in order."""
    engine = Engine()
    for t in _irregular_times(_N):
        engine.schedule_at(t, lambda: None)
    engine.run()
    assert engine._heap_mode
    fired = []
    base = engine.now
    survivors = []
    doomed = []
    for i, t in enumerate(_irregular_times(600, seed=3, start=base)):
        handle = engine.schedule_at(t, fired.append, i)
        (doomed if i % 3 else survivors).append((i, handle))
    for _, handle in doomed:
        engine.cancel(handle)
    assert engine.pending == len(survivors)
    engine.run()
    assert fired == [i for i, _ in survivors]


def test_reschedule_reuse_under_fallback():
    """The hold-timer pattern while in heap mode: a fired handle is
    re-armed through ``reschedule`` and fires again at the new time."""
    engine = Engine()
    for t in _irregular_times(_N):
        engine.schedule_at(t, lambda: None)
    engine.run()
    assert engine._heap_mode
    fired = []
    handle = engine.schedule(1.0, fired.append, "a")
    engine.run()
    assert fired == ["a"]
    rearmed = engine.reschedule(handle, engine.now + 2.0)
    engine.run()
    assert fired == ["a", "a"]
    assert rearmed.fired


def test_nested_drain_never_migrates():
    """A callback that re-enters run_until (a nested drain) must not
    migrate the queue mid-flight; the outermost drain migrates after
    the nested one returns."""
    engine = Engine()
    modes = []

    def nested():
        for t in _irregular_times(_N, seed=9, start=engine.now + 0.5):
            engine.schedule_at(t, lambda: None)
        engine.run_until(engine.now + 10_000.0)
        modes.append(engine._heap_mode)

    engine.schedule(1.0, nested)
    engine.run()
    # The nested drain processed the whole irregular load but left the
    # structure alone; the outer drain then saw the trip counters.
    assert modes == [False]
    assert engine.events_processed == _N + 1
