"""Tests for the whole-program semantic passes of ``repro.lint``.

Covers the project symbol table and call graph (import aliases,
method dispatch through inferred receiver types, Protocol fan-out,
cycles), the interprocedural determinism taint pass (DET1xx: fixed
point, multi-frame call chains in messages, pragma discipline at the
*source* site), the process-boundary contract rule (CON001), static
Protocol conformance (PRO001), the content-sha result cache, the
parallel front-end, and file discovery exclusions.

The regression class at the bottom re-introduces a wall-clock read
into a copy of the real ``run_campaign`` and asserts DET102 reports
it with the full ``build_golden -> run_campaign`` chain — the exact
bug class this PR fixed in the live tree.
"""

import shutil
import textwrap
from pathlib import Path

from repro.lint import LintEngine, rules_by_id
from repro.lint.engine import ModuleContext, iter_python_files
from repro.lint.semantic import (
    ProjectIndex,
    build_callgraph,
    summarize_module,
)
from repro.lint.semantic.taint import entry_points, propagate

ROOT = Path(__file__).parent.parent


def write_tree(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))


def lint_tree(tmp_path, files, rule=None, **kwargs):
    """Write fixture files, lint the tree, return findings (for one
    rule id when given, else all)."""
    write_tree(tmp_path, files)
    rules = None if rule is None else rules_by_id(rule)
    report = LintEngine(tmp_path, rules=rules).lint_paths(
        [tmp_path], **kwargs
    )
    findings = report.findings
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


def build_graph(tmp_path, files):
    """Write fixture files, return (index, callgraph)."""
    write_tree(tmp_path, files)
    summaries = []
    for path in iter_python_files([tmp_path]):
        rel = path.relative_to(tmp_path).as_posix()
        summaries.append(
            summarize_module(ModuleContext(path, rel, path.read_text()))
        )
    index = ProjectIndex(summaries)
    return index, build_callgraph(index)


def edges_of(graph):
    return {(src, dst) for src, dst, _line, _kind in graph.edges}


class TestCallGraph:
    def test_aliased_from_import_resolves_to_definition(self, tmp_path):
        _, graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """
                def helper():
                    return 1
                """,
                "pkg/b.py": """
                from pkg.a import helper as h

                def caller():
                    return h()
                """,
            },
        )
        assert ("pkg.b.caller", "pkg.a.helper") in edges_of(graph)

    def test_reexport_through_package_init(self, tmp_path):
        _, graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "from .a import helper\n",
                "pkg/a.py": """
                def helper():
                    return 1
                """,
                "main.py": """
                from pkg import helper

                def entry():
                    return helper()
                """,
            },
        )
        assert ("main.entry", "pkg.a.helper") in edges_of(graph)

    def test_method_call_through_inferred_receiver(self, tmp_path):
        _, graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/router.py": """
                class Router:
                    def step(self):
                        return 0
                """,
                "pkg/drive.py": """
                from pkg.router import Router

                def use():
                    r = Router()
                    return r.step()
                """,
            },
        )
        got = edges_of(graph)
        assert ("pkg.drive.use", "pkg.router.Router.step") in got
        # Constructing Router also edges into __init__ when defined;
        # here there is none, so only the method edge exists.

    def test_protocol_receiver_fans_out_to_implementers(self, tmp_path):
        _, graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/proto.py": """
                from typing import Protocol

                class Ticker(Protocol):
                    def tick(self) -> int: ...
                """,
                "pkg/impls.py": """
                class Fast:
                    def tick(self) -> int:
                        return 1

                class Slow:
                    def tick(self) -> int:
                        return 2
                """,
                "pkg/drive.py": """
                from pkg.proto import Ticker

                def pump(t: Ticker):
                    return t.tick()
                """,
            },
        )
        got = edges_of(graph)
        assert ("pkg.drive.pump", "pkg.impls.Fast.tick") in got
        assert ("pkg.drive.pump", "pkg.impls.Slow.tick") in got

    def test_cycles_build_and_stay_reachable(self, tmp_path):
        _, graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/loop.py": """
                def ping(n):
                    return pong(n - 1)

                def pong(n):
                    return ping(n - 1)
                """,
            },
        )
        got = edges_of(graph)
        assert ("pkg.loop.ping", "pkg.loop.pong") in got
        assert ("pkg.loop.pong", "pkg.loop.ping") in got
        parents = graph.reachable_from(["pkg.loop.ping"])
        assert "pkg.loop.pong" in parents


TAINT_FIXTURE = {
    "pkg/__init__.py": "",
    "pkg/clock.py": """
    import time

    def now():
        return time.time()
    """,
    "pkg/mid.py": """
    from pkg.clock import now

    def stamp():
        return now()
    """,
    "pkg/digest.py": """
    from pkg.mid import stamp

    def state_digest():
        return hash_of(stamp())

    def hash_of(value):
        return str(value)
    """,
}


class TestTaint:
    def test_three_frame_chain_reported_at_source_site(self, tmp_path):
        findings = lint_tree(tmp_path, TAINT_FIXTURE, rule="DET102")
        assert len(findings) == 1
        finding = findings[0]
        # Anchored at the impure *source* line, not the digest entry.
        assert finding.path == "pkg/clock.py"
        assert finding.line == 5
        assert (
            "pkg.digest.state_digest -> pkg.mid.stamp -> pkg.clock.now"
            in finding.message
        )

    def test_source_site_pragma_suppresses(self, tmp_path):
        files = dict(TAINT_FIXTURE)
        files["pkg/clock.py"] = """
        import time

        def now():
            # lint: allow[DET102] -- fixture: value never enters digest
            return time.time()
        """
        findings = lint_tree(tmp_path, files, rule="DET102")
        assert findings == []

    def test_det002_pragma_does_not_suppress_det102(self, tmp_path):
        files = dict(TAINT_FIXTURE)
        files["pkg/clock.py"] = """
        import time

        def now():
            # lint: allow[DET002] -- fixture: display only (wrongly)
            return time.time()
        """
        findings = lint_tree(tmp_path, files, rule="DET102")
        assert len(findings) == 1, (
            "a per-file DET002 waiver must not silence the "
            "interprocedural proof that the value reaches a digest"
        )

    def test_environ_read_taints_as_det105(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/env.py": """
                import os

                def knob():
                    return os.environ.get("REPRO_KNOB", "0")

                def detection_digest():
                    return knob()
                """,
            },
            rule="DET105",
        )
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_propagation_converges_on_mutual_recursion(self, tmp_path):
        index, graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/rec.py": """
                import time

                def state_digest():
                    return even(8)

                def even(n):
                    return n == 0 or odd(n - 1)

                def odd(n):
                    time.time()
                    return n != 0 and even(n - 1)
                """,
            },
        )
        taints = propagate(graph)
        assert "DET102" in taints.get("pkg.rec.even", frozenset())
        assert "DET102" in taints.get("pkg.rec.odd", frozenset())
        assert "DET102" in taints.get("pkg.rec.state_digest", frozenset())
        assert entry_points(graph) == ["pkg.rec.state_digest"]

    def test_pure_chain_stays_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/pure.py": """
                def state_digest():
                    return helper(3)

                def helper(n):
                    return sorted(range(n))
                """,
            },
        )
        assert [f for f in findings if f.rule.startswith("DET1")] == []


class TestCON001:
    def test_seam_without_registry_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "src/pkg/sim/parallel.py": """
                def shard_task(index):
                    return index
                """,
            },
            rule="CON001",
        )
        assert len(findings) == 1
        assert findings[0].line == 1
        assert "TRANSFERABLE_TYPES" in findings[0].message

    def test_unregistered_send_payload_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "src/pkg/sim/parallel.py": """
                class Msg:
                    pass

                class Evil:
                    pass

                TRANSFERABLE_TYPES = (Msg,)

                def make() -> Evil:
                    return Evil()

                def worker(conn):
                    conn.send(make())
                """,
            },
            rule="CON001",
        )
        assert len(findings) == 1
        assert findings[0].line == 14
        assert "Evil" in findings[0].message

    def test_registered_send_payload_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "src/pkg/sim/parallel.py": """
                class Msg:
                    pass

                TRANSFERABLE_TYPES = (Msg,)

                def make() -> Msg:
                    return Msg()

                def worker(conn):
                    conn.send(("ok", [make()]))
                """,
            },
            rule="CON001",
        )
        assert findings == []

    def test_lambda_worker_target_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "src/pkg/sim/parallel.py": """
                from multiprocessing import Process

                class Msg:
                    pass

                TRANSFERABLE_TYPES = (Msg,)

                def spawn():
                    return Process(target=lambda: None)
                """,
            },
            rule="CON001",
        )
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_worker_reading_mutable_global_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "src/pkg/sim/parallel.py": """
                class Msg:
                    pass

                TRANSFERABLE_TYPES = (Msg,)

                STATE = {}

                def worker(index):
                    return STATE.get(index)

                def spawn(pool):
                    return pool.map(worker, [1, 2])
                """,
            },
            rule="CON001",
        )
        assert len(findings) == 1
        assert "STATE" in findings[0].message

    def test_non_seam_module_is_ignored(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "src/pkg/other.py": """
                def worker(conn):
                    conn.send(object())
                """,
            },
            rule="CON001",
        )
        assert findings == []


PRO_SCHEDULER = """
from typing import Protocol


class EventScheduler(Protocol):
    def schedule(self, when: float, event: object) -> None: ...

    def run_until(self, when: float) -> int: ...
"""


class TestPRO001:
    def _lint(self, tmp_path, engine_src):
        return lint_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/sim/__init__.py": "",
                "src/repro/sim/scheduler.py": PRO_SCHEDULER,
                "src/repro/sim/engine.py": engine_src,
            },
            rule="PRO001",
        )

    def test_conforming_implementer_is_clean(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            class Engine:
                def schedule(self, when: float, event: object) -> None:
                    pass

                def run_until(self, when: float) -> int:
                    return 0
            """,
        )
        assert findings == []

    def test_missing_method_is_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            class Engine:
                def schedule(self, when: float, event: object) -> None:
                    pass
            """,
        )
        assert len(findings) == 1
        assert "run_until" in findings[0].message

    def test_arity_drift_is_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            class Engine:
                def schedule(self, when, event, priority):
                    pass

                def run_until(self, when):
                    return 0
            """,
        )
        assert len(findings) == 1
        assert "schedule" in findings[0].message

    def test_absent_protocol_is_silent(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"src/pkg/mod.py": "class Engine:\n    pass\n"},
            rule="PRO001",
        )
        assert findings == []


class TestCacheAndJobs:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/a.py": "def f():\n    return 1\n",
        "pkg/b.py": "def g():\n    return 2\n",
    }

    def test_warm_cache_hits_and_edit_invalidates(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        cache = tmp_path / "cache.json"
        engine = LintEngine(tmp_path)
        cold = engine.lint_paths([tmp_path], cache_path=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == cold.files > 0

        warm = engine.lint_paths([tmp_path], cache_path=cache)
        assert warm.cache_misses == 0
        assert warm.cache_hits == warm.files
        assert warm.findings == []

        # Edit one file to introduce a violation: only that file
        # re-analyzes, and the finding is NOT served stale.
        (tmp_path / "pkg/a.py").write_text(
            "import random\n\ndef f():\n    return random.random()\n"
        )
        third = engine.lint_paths([tmp_path], cache_path=cache)
        assert third.cache_misses == 1
        assert third.cache_hits == third.files - 1
        assert [f.rule for f in third.findings] == ["DET001"]

    def test_cache_keyed_by_rule_set(self, tmp_path):
        write_tree(tmp_path, self.FILES)
        cache = tmp_path / "cache.json"
        LintEngine(tmp_path, rules=rules_by_id("DET001")).lint_paths(
            [tmp_path], cache_path=cache
        )
        # A different rule set must not reuse those entries.
        full = LintEngine(tmp_path).lint_paths(
            [tmp_path], cache_path=cache
        )
        assert full.cache_hits == 0

    def test_parallel_front_end_matches_serial(self, tmp_path):
        files = dict(TAINT_FIXTURE)
        files["pkg/dirty.py"] = (
            "import random\n\nVALUE = random.random()\n"
        )
        write_tree(tmp_path, files)
        serial = LintEngine(tmp_path).lint_paths([tmp_path], jobs=1)
        parallel = LintEngine(tmp_path).lint_paths([tmp_path], jobs=2)
        as_tuples = lambda report: [
            (f.rule, f.path, f.line, f.message)
            for f in report.findings
        ]
        assert as_tuples(serial) == as_tuples(parallel)
        assert any(f.rule == "DET102" for f in serial.findings)


class TestFileDiscovery:
    def test_build_artifacts_and_hidden_dirs_are_excluded(
        self, tmp_path
    ):
        write_tree(
            tmp_path,
            {
                "src/repro/mod.py": "x = 1\n",
                "src/repro.egg-info/stale.py": "import random\n",
                "build/lib/repro/mod.py": "import random\n",
                "dist/pkg/mod.py": "import random\n",
                ".tox/env/site.py": "import random\n",
                "src/repro/__pycache__/mod.py": "import random\n",
            },
        )
        found = iter_python_files([tmp_path])
        rels = [p.relative_to(tmp_path).as_posix() for p in found]
        assert rels == ["src/repro/mod.py"]

    def test_explicit_file_arguments_are_never_filtered(self, tmp_path):
        target = tmp_path / "build" / "lib" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        assert iter_python_files([target]) == [target]


class TestRunCampaignRegression:
    """Re-introducing a wall-clock read into the real ``run_campaign``
    must be caught with the full build_golden chain (the true positive
    this PR fixed: CampaignResult carried a ``time.perf_counter``
    elapsed field straight into the golden corpus's call graph)."""

    COPIES = (
        "src/repro/__init__.py",
        "src/repro/campaign/__init__.py",
        "src/repro/campaign/runner.py",
        "src/repro/verify/__init__.py",
        "src/repro/verify/golden.py",
    )

    def _doctored_tree(self, tmp_path):
        for rel in self.COPIES:
            dst = tmp_path / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(ROOT / rel, dst)
        runner = tmp_path / "src/repro/campaign/runner.py"
        text = runner.read_text()
        anchor = "    plan = config.shard_plan()"
        assert anchor in text, "run_campaign anchor moved; update test"
        runner.write_text(
            "import time\n"
            + text.replace(
                anchor, anchor + "\n    _started = time.perf_counter()"
            )
        )
        return tmp_path

    def test_reintroduced_clock_read_reports_full_chain(self, tmp_path):
        tree = self._doctored_tree(tmp_path)
        report = LintEngine(
            tree, rules=rules_by_id("DET102")
        ).lint_paths([tree / "src"])
        findings = [f for f in report.findings if f.rule == "DET102"]
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/repro/campaign/runner.py"
        assert (
            "repro.verify.golden.build_golden -> "
            "repro.campaign.runner.run_campaign" in finding.message
        )

    def test_current_tree_is_clean_without_the_edit(self, tmp_path):
        for rel in self.COPIES:
            dst = tmp_path / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(ROOT / rel, dst)
        report = LintEngine(
            tmp_path, rules=rules_by_id("DET102")
        ).lint_paths([tmp_path / "src"])
        assert report.findings == []
