"""Tests for the RFC 6396 MRT interoperability codec."""

import io
import struct

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.rib import LocRib
from repro.bgp.wire import WireError
from repro.collector.mrt_rfc import (
    MRT_TYPE_BGP4MP,
    MRT_TYPE_TABLE_DUMP,
    read_bgp4mp,
    read_table_dump,
    write_bgp4mp,
    write_table_dump,
)
from repro.collector.record import UpdateKind, UpdateRecord
from repro.collector.snapshot import snapshot
from repro.net.prefix import Prefix

P = Prefix.parse


def announce(time=100.0, peer=0x0A000001, asn=701, prefix="10.0.0.0/8"):
    return UpdateRecord(
        time, peer, asn, P(prefix), UpdateKind.ANNOUNCE,
        PathAttributes(as_path=AsPath((asn, 3561)), next_hop=peer, med=5),
    )


def withdraw(time=101.0, peer=0x0A000001, asn=701, prefix="10.0.0.0/8"):
    return UpdateRecord(time, peer, asn, P(prefix), UpdateKind.WITHDRAW)


class TestBgp4mp:
    def test_roundtrip(self):
        records = [announce(), withdraw(), announce(prefix="192.0.2.0/24")]
        buffer = io.BytesIO()
        assert write_bgp4mp(buffer, records) == 3
        buffer.seek(0)
        back = list(read_bgp4mp(buffer))
        assert len(back) == 3
        for original, loaded in zip(records, back):
            assert loaded.prefix == original.prefix
            assert loaded.kind == original.kind
            assert loaded.peer_asn == original.peer_asn
            assert loaded.peer_id == original.peer_id
            # RFC 6396 classic timestamps are whole seconds.
            assert loaded.time == float(int(original.time))

    def test_attributes_survive(self):
        buffer = io.BytesIO()
        write_bgp4mp(buffer, [announce()])
        buffer.seek(0)
        (record,) = read_bgp4mp(buffer)
        assert tuple(record.attributes.as_path) == (701, 3561)
        assert record.attributes.med == 5

    def test_empty_stream(self):
        assert list(read_bgp4mp(io.BytesIO(b""))) == []

    def test_truncated_header(self):
        with pytest.raises(WireError):
            list(read_bgp4mp(io.BytesIO(b"\x00\x01\x02")))

    def test_wrong_type_rejected(self):
        buffer = io.BytesIO()
        write_bgp4mp(buffer, [withdraw()])
        data = bytearray(buffer.getvalue())
        data[5] = 99  # type low byte
        with pytest.raises(WireError):
            list(read_bgp4mp(io.BytesIO(bytes(data))))

    def test_common_header_fields(self):
        buffer = io.BytesIO()
        write_bgp4mp(buffer, [withdraw(time=1234.9)])
        data = buffer.getvalue()
        timestamp, mrt_type, subtype, length = struct.unpack_from(
            ">IHHI", data
        )
        assert timestamp == 1234  # truncated to seconds
        assert mrt_type == MRT_TYPE_BGP4MP
        assert subtype == 1
        assert length == len(data) - 12


class TestTableDump:
    def _snapshot(self):
        rib = LocRib()
        rib.apply_announce(
            0x0A000001, P("10.0.0.0/8"),
            PathAttributes(as_path=AsPath((701,)), next_hop=1),
        )
        rib.apply_announce(
            0x0A000002, P("10.0.0.0/8"),
            PathAttributes(as_path=AsPath((1239,)), next_hop=2),
        )
        rib.apply_announce(
            0x0A000001, P("192.0.2.0/24"),
            PathAttributes(as_path=AsPath((701, 7018)), next_hop=1),
        )
        return snapshot(rib, time=5000.0)

    def test_roundtrip(self):
        snap = self._snapshot()
        buffer = io.BytesIO()
        entries = write_table_dump(buffer, snap)
        assert entries == 3
        buffer.seek(0)
        loaded = read_table_dump(buffer)
        assert loaded.prefixes == snap.prefixes
        assert loaded.multihomed_prefixes() == {P("10.0.0.0/8")}
        # Attributes survive through the standard encoding.
        for prefix in snap.routes:
            loaded_paths = {
                tuple(attrs.as_path) for _, attrs in loaded.routes[prefix]
            }
            original_paths = {
                tuple(attrs.as_path) for _, attrs in snap.routes[prefix]
            }
            assert loaded_paths == original_paths

    def test_record_type_on_wire(self):
        buffer = io.BytesIO()
        write_table_dump(buffer, self._snapshot())
        _, mrt_type, subtype, _ = struct.unpack_from(
            ">IHHI", buffer.getvalue()
        )
        assert mrt_type == MRT_TYPE_TABLE_DUMP
        assert subtype == 1  # AFI_IPv4

    def test_empty_snapshot(self):
        rib = LocRib()
        buffer = io.BytesIO()
        assert write_table_dump(buffer, snapshot(rib)) == 0
        buffer.seek(0)
        assert len(read_table_dump(buffer)) == 0

    def test_truncated(self):
        buffer = io.BytesIO()
        write_table_dump(buffer, self._snapshot())
        data = buffer.getvalue()
        with pytest.raises(WireError):
            read_table_dump(io.BytesIO(data[: len(data) - 4]))
