"""Tests for time-series preparation and spectral estimation
(timeseries, spectral, mem, ssa)."""

import math

import numpy as np
import pytest

from repro.analysis.mem import burg, mem_psd
from repro.analysis.spectral import (
    autocorrelation,
    correlogram_psd,
    dominant_periods,
    has_period,
    periodogram,
)
from repro.analysis.ssa import significant_frequencies, ssa_components
from repro.analysis.timeseries import (
    aggregate_bins,
    bin_records,
    linear_fit,
    log_detrend,
    threshold_above_mean,
)
from repro.collector.record import UpdateKind, UpdateRecord
from repro.net.prefix import Prefix


def W(time):
    return UpdateRecord(time, 1, 701, Prefix.parse("10.0.0.0/8"),
                        UpdateKind.WITHDRAW)


def synthetic_daily_series(n_days=60, noise=0.05, seed=1):
    """Hourly series with 24h and 168h cycles plus trend and noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_days * 24)
    daily = 1.0 + 0.5 * np.sin(2 * np.pi * t / 24.0)
    weekly = 1.0 + 0.3 * np.sin(2 * np.pi * t / 168.0)
    trend = 1.0 + 0.002 * t
    return 100.0 * daily * weekly * trend * (
        1.0 + noise * rng.standard_normal(t.size)
    )


class TestBinning:
    def test_bin_records_counts(self):
        records = [W(5.0), W(7.0), W(605.0)]
        counts = bin_records(records, bin_width=600.0)
        assert counts[0] == 2
        assert counts[1] == 1

    def test_empty(self):
        assert bin_records([], 600.0).size == 0

    def test_explicit_range(self):
        counts = bin_records([W(50.0)], bin_width=10.0, start=0.0, end=100.0)
        assert counts.size == 10
        assert counts[5] == 1

    def test_aggregate_bins(self):
        fine = list(range(12))
        coarse = aggregate_bins(fine, 6)
        assert list(coarse) == [sum(range(6)), sum(range(6, 12))]

    def test_aggregate_drops_ragged_tail(self):
        assert list(aggregate_bins([1, 1, 1, 1, 1], 2)) == [2, 2]

    def test_aggregate_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            aggregate_bins([1], 0)


class TestDetrending:
    def test_linear_fit_recovers_line(self):
        values = [2.0 + 0.5 * i for i in range(50)]
        slope, intercept = linear_fit(values)
        assert slope == pytest.approx(0.5)
        assert intercept == pytest.approx(2.0)

    def test_log_detrend_removes_exponential_growth(self):
        series = [100.0 * math.exp(0.01 * i) for i in range(200)]
        detrended = log_detrend(series)
        assert abs(detrended.mean()) < 1e-9
        assert detrended.std() < 1e-9  # pure trend → flat residual

    def test_log_detrend_preserves_oscillation(self):
        t = np.arange(200)
        series = 100.0 * np.exp(0.01 * t) * (1.0 + 0.3 * np.sin(t))
        detrended = log_detrend(series)
        assert detrended.std() > 0.1

    def test_floor_handles_zero_bins(self):
        detrended = log_detrend([0, 10, 0, 10])
        assert np.isfinite(detrended).all()

    def test_threshold_above_mean(self):
        data = [0.0] * 50 + [1.0] * 50
        threshold = threshold_above_mean(data, offset_std=0.5)
        assert 0.5 < threshold < 1.0


class TestFftSpectra:
    def test_autocorrelation_lag0_is_one(self):
        acf = autocorrelation(synthetic_daily_series())
        assert acf[0] == pytest.approx(1.0)

    def test_autocorrelation_periodic_signal(self):
        t = np.arange(480)
        acf = autocorrelation(np.sin(2 * np.pi * t / 24.0), max_lag=48)
        assert acf[24] > 0.8
        assert acf[12] < -0.8

    def test_correlogram_finds_daily_and_weekly(self):
        series = np.log(synthetic_daily_series())
        freqs, power = correlogram_psd(series, max_lag=400)
        peaks = dominant_periods(freqs, power, n_peaks=6)
        assert has_period(peaks, 24.0)
        assert has_period(peaks, 168.0, tolerance=0.3)

    def test_periodogram_pure_tone(self):
        t = np.arange(256)
        freqs, power = periodogram(np.sin(2 * np.pi * t / 16.0))
        assert freqs[np.argmax(power)] == pytest.approx(1 / 16.0, abs=1e-3)

    def test_empty_series(self):
        freqs, power = periodogram([])
        assert freqs.size == 0
        f2, p2 = correlogram_psd([])
        assert f2.size == 0


class TestMem:
    def test_burg_recovers_ar1(self):
        rng = np.random.default_rng(2)
        n = 2000
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = 0.8 * x[i - 1] + rng.standard_normal()
        a, variance = burg(x, order=1)
        # Model x_t = -a1 x_{t-1} + e  => a1 ≈ -0.8.
        assert a[0] == pytest.approx(-0.8, abs=0.05)
        assert variance == pytest.approx(1.0, rel=0.2)

    def test_burg_validates_input(self):
        with pytest.raises(ValueError):
            burg([1.0, 2.0], order=5)
        with pytest.raises(ValueError):
            burg([1.0, 2.0, 3.0], order=0)

    def test_mem_finds_daily_cycle(self):
        series = np.log(synthetic_daily_series())
        freqs, power = mem_psd(series, order=30)
        peaks = dominant_periods(freqs, power, n_peaks=5)
        assert has_period(peaks, 24.0)

    def test_mem_agrees_with_fft_on_peak(self):
        """The paper's cross-validation: both methods find the same
        dominant line."""
        series = np.log(synthetic_daily_series())
        f1, p1 = correlogram_psd(series, max_lag=400)
        f2, p2 = mem_psd(series, order=30)
        peak_fft = f1[np.argmax(p1[5:]) + 5]
        peak_mem = f2[np.argmax(p2[5:]) + 5]
        assert peak_fft == pytest.approx(peak_mem, abs=0.01)

    def test_mem_psd_positive(self):
        series = np.log(synthetic_daily_series())
        _, power = mem_psd(series, order=20)
        assert (power > 0).all()


class TestSsa:
    def test_components_ordered_by_variance(self):
        series = np.log(synthetic_daily_series())
        components = ssa_components(series, window=168)
        shares = [c.variance_share for c in components]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) <= 1.0 + 1e-9

    def test_oscillatory_pairs_share_frequency(self):
        """A pure sinusoid gives a leading eigen-pair at its frequency."""
        t = np.arange(600)
        series = np.sin(2 * np.pi * t / 24.0)
        components = ssa_components(series, window=96, n_components=2)
        for c in components[:2]:
            assert c.frequency == pytest.approx(1 / 24.0, abs=0.01)

    def test_significant_frequencies_finds_cycles(self):
        series = np.log(synthetic_daily_series())
        found = significant_frequencies(series, window=200, seed=1)
        periods = [c.period for c in found]
        assert any(abs(p - 24.0) / 24.0 < 0.15 for p in periods)
        assert any(p > 100.0 for p in periods)  # the weekly component

    def test_white_noise_yields_nothing(self):
        rng = np.random.default_rng(3)
        noise = rng.standard_normal(800)
        found = significant_frequencies(noise, window=200, seed=2)
        assert len(found) <= 1  # at most a borderline artifact

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError):
            ssa_components(np.zeros(10), window=8)
