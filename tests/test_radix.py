"""Unit and property tests for repro.net.radix."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.prefix import Prefix
from repro.net.radix import RadixTree

from .test_prefix import prefixes


def P(text):
    return Prefix.parse(text)


class TestBasicOps:
    def test_empty(self):
        tree = RadixTree()
        assert len(tree) == 0
        assert not tree
        assert P("10.0.0.0/8") not in tree
        assert tree.lookup_best(P("10.0.0.0/8")) is None

    def test_insert_and_get(self):
        tree = RadixTree()
        tree[P("10.0.0.0/8")] = "a"
        assert tree[P("10.0.0.0/8")] == "a"
        assert len(tree) == 1

    def test_replace_keeps_size(self):
        tree = RadixTree()
        tree[P("10.0.0.0/8")] = "a"
        tree[P("10.0.0.0/8")] = "b"
        assert tree[P("10.0.0.0/8")] == "b"
        assert len(tree) == 1

    def test_get_default(self):
        tree = RadixTree()
        assert tree.get(P("10.0.0.0/8"), "missing") == "missing"

    def test_missing_raises(self):
        tree = RadixTree()
        tree[P("10.0.0.0/8")] = "a"
        with pytest.raises(KeyError):
            tree[P("10.1.0.0/16")]

    def test_delete(self):
        tree = RadixTree()
        tree[P("10.0.0.0/8")] = "a"
        del tree[P("10.0.0.0/8")]
        assert len(tree) == 0
        with pytest.raises(KeyError):
            del tree[P("10.0.0.0/8")]

    def test_clear(self):
        tree = RadixTree()
        tree[P("10.0.0.0/8")] = "a"
        tree[P("11.0.0.0/8")] = "b"
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []


class TestLongestPrefixMatch:
    def setup_method(self):
        self.tree = RadixTree()
        self.tree[P("10.0.0.0/8")] = "eight"
        self.tree[P("10.1.0.0/16")] = "sixteen"
        self.tree[P("10.1.2.0/24")] = "twentyfour"
        self.tree[P("192.168.0.0/16")] = "rfc1918"

    def test_most_specific_wins(self):
        m = self.tree.lookup_best(P("10.1.2.0/25"))
        assert m.prefix == P("10.1.2.0/24")
        assert m.value == "twentyfour"

    def test_falls_back_to_covering(self):
        m = self.tree.lookup_best(P("10.2.0.0/16"))
        assert m.prefix == P("10.0.0.0/8")

    def test_exact_match(self):
        m = self.tree.lookup_best(P("10.1.0.0/16"))
        assert m.value == "sixteen"

    def test_no_match(self):
        assert self.tree.lookup_best(P("11.0.0.0/8")) is None

    def test_lookup_address(self):
        m = self.tree.lookup_address((10 << 24) | (1 << 16) | (2 << 8) | 7)
        assert m.value == "twentyfour"

    def test_covering_order_least_specific_first(self):
        got = [p for p, _ in self.tree.covering(P("10.1.2.0/24"))]
        assert got == [P("10.0.0.0/8"), P("10.1.0.0/16"), P("10.1.2.0/24")]

    def test_covered_enumeration(self):
        got = {p for p, _ in self.tree.covered(P("10.0.0.0/8"))}
        assert got == {P("10.0.0.0/8"), P("10.1.0.0/16"), P("10.1.2.0/24")}

    def test_covered_of_unrelated_is_empty(self):
        assert list(self.tree.covered(P("172.16.0.0/12"))) == []


class TestStructuralEdgeCases:
    def test_glue_node_creation_and_pruning(self):
        tree = RadixTree()
        # These two force a glue node at 10.0.0.0/14 (or similar meet).
        tree[P("10.0.0.0/16")] = 1
        tree[P("10.3.0.0/16")] = 2
        assert len(tree) == 2
        assert tree[P("10.0.0.0/16")] == 1
        assert tree[P("10.3.0.0/16")] == 2
        del tree[P("10.3.0.0/16")]
        assert tree[P("10.0.0.0/16")] == 1
        assert len(tree) == 1

    def test_insert_above_existing_root(self):
        tree = RadixTree()
        tree[P("10.1.0.0/16")] = "child"
        tree[P("10.0.0.0/8")] = "parent"
        assert tree.lookup_best(P("10.2.0.0/16")).value == "parent"
        assert tree.lookup_best(P("10.1.0.0/16")).value == "child"

    def test_delete_internal_value_keeps_children(self):
        tree = RadixTree()
        tree[P("10.0.0.0/8")] = "parent"
        tree[P("10.0.0.0/16")] = "left"
        tree[P("10.128.0.0/16")] = "right"
        del tree[P("10.0.0.0/8")]
        assert len(tree) == 2
        assert tree.lookup_best(P("10.0.0.0/24")).value == "left"
        assert tree.lookup_best(P("10.128.0.0/24")).value == "right"

    def test_default_route(self):
        tree = RadixTree()
        tree[P("0.0.0.0/0")] = "default"
        tree[P("10.0.0.0/8")] = "ten"
        assert tree.lookup_best(P("11.0.0.0/8")).value == "default"
        assert tree.lookup_best(P("10.0.0.0/24")).value == "ten"

    def test_items_in_address_order(self):
        tree = RadixTree()
        ps = [P("192.168.0.0/16"), P("10.0.0.0/8"), P("10.1.0.0/16")]
        for i, p in enumerate(ps):
            tree[p] = i
        assert [p for p, _ in tree.items()] == sorted(ps)


class TestAgainstReferenceModel:
    """Randomized differential test against a brute-force dict model."""

    def _reference_lookup(self, model, query):
        best = None
        for p in model:
            if p.covers(query) and (best is None or p.length > best.length):
                best = p
        return best

    def test_random_ops_match_model(self):
        rng = random.Random(42)
        tree = RadixTree()
        model = {}
        pool = [
            Prefix(rng.randrange(0, 1 << 32) & (0xFFFFFFFF << (32 - L)) & 0xFFFFFFFF, L)
            for L in (4, 8, 12, 16, 20, 24, 28)
            for _ in range(12)
        ]
        for step in range(1500):
            op = rng.random()
            p = rng.choice(pool)
            if op < 0.55:
                tree[p] = step
                model[p] = step
            elif op < 0.8:
                removed = tree.delete(p)
                assert removed == (p in model)
                model.pop(p, None)
            else:
                q = rng.choice(pool)
                got = tree.lookup_best(q)
                want = self._reference_lookup(model, q)
                if want is None:
                    assert got is None
                else:
                    assert got.prefix == want
                    assert got.value == model[want]
            assert len(tree) == len(model)
        assert dict(tree.items()) == model


@settings(max_examples=60)
@given(st.dictionaries(prefixes(), st.integers(), max_size=40))
def test_items_roundtrip_property(mapping):
    tree = RadixTree()
    for p, v in mapping.items():
        tree[p] = v
    assert dict(tree.items()) == mapping
    for p, v in mapping.items():
        assert tree[p] == v


@settings(max_examples=60)
@given(
    st.sets(prefixes(), max_size=30),
    prefixes(),
)
def test_lookup_best_matches_bruteforce(stored, query):
    tree = RadixTree()
    for p in stored:
        tree[p] = str(p)
    covering = [p for p in stored if p.covers(query)]
    got = tree.lookup_best(query)
    if not covering:
        assert got is None
    else:
        want = max(covering, key=lambda p: p.length)
        assert got.prefix == want
