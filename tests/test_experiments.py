"""Smoke and behaviour tests for the experiment runners and registry.

The full experiments run in the benchmark harness; here the fast ones
run outright and the heavy ones run with reduced parameters, checking
that the machinery (runners, result rendering, registry) behaves.
"""

import pytest

from repro.core.report import ExperimentResult
from repro.experiments import (
    EXPERIMENTS,
    SPECS,
    ExperimentSpec,
    experiment_ids,
    run_experiment,
)
from repro.experiments import figure1, figure4, figure10, table1
from repro.experiments.ablations import (
    run_damping_study,
    run_route_server_study,
)
from repro.experiments.figure3 import run as run_figure3
from repro.experiments.pathology import (
    run_crash_experiment,
    run_stateless_comparison,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        assert "table1" in ids
        for n in range(1, 11):
            assert f"figure{n}" in ids

    def test_ablations_registered(self):
        assert sum(1 for i in experiment_ids() if i.startswith("ablation-")) == 8

    def test_unknown_id_raises_with_listing(self):
        with pytest.raises(KeyError, match="figure1"):
            run_experiment("figure99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("figure1")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "figure1"


class TestExperimentSpecs:
    def test_every_id_has_a_complete_spec(self):
        assert set(SPECS) == set(EXPERIMENTS)
        for experiment_id, spec in SPECS.items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.id == experiment_id
            assert spec.title.strip()
            # The paper-context strings live only here (the CLI and
            # EXPERIMENTS.md both read them from the spec).
            assert spec.paper_context.strip()
            assert callable(spec.runner)

    def test_experiments_view_is_thin_wrapper(self):
        """EXPERIMENTS keeps its historical zero-arg-callable shape."""
        result = EXPERIMENTS["figure1"]()
        assert isinstance(result, ExperimentResult)

    def test_config_reseeds_a_seeded_experiment(self):
        from repro.campaign import CampaignConfig

        default = run_experiment("figure4")
        reseeded = run_experiment("figure4", CampaignConfig(seed=1234))
        assert default.measurements != reseeded.measurements
        # And the same config reproduces itself.
        again = run_experiment("figure4", CampaignConfig(seed=1234))
        assert again.measurements == reseeded.measurements

    def test_spec_run_method_matches_registry_dispatch(self):
        spec = SPECS["figure1"]
        assert spec.run().experiment_id == "figure1"


class TestFastExperiments:
    def test_figure1_checks_pass(self):
        result = figure1.run()
        assert all(result.all_checks().values())

    def test_figure4_checks_pass(self):
        result = figure4.run()
        assert all(result.all_checks().values())
        assert len(result.tables[0].rows) == 7  # one row per weekday

    def test_figure10_checks_pass(self):
        result = figure10.run()
        assert all(result.all_checks().values())

    def test_results_render_without_error(self):
        for runner in (figure1.run, figure4.run, figure10.run):
            text = runner().render()
            assert "Measurements" in text


class TestReducedParameterRuns:
    def test_table1_reduced_duration(self):
        result = table1.run(duration=1200.0, prefixes_per_provider=20)
        # The ISP-I signature survives even a short run.
        assert result.check("isp_i_withdraw_to_announce_ratio")
        assert result.check("isp_i_withdrawals_dominate_day")

    def test_figure3_reduced_days(self):
        result = run_figure3(n_days=42)
        # Structural checks that survive a short campaign.
        assert result.check("afternoon_high_fraction")
        assert result.check("night_high_fraction")

    def test_crash_experiment_thresholds(self):
        assert run_crash_experiment(300.0)
        assert not run_crash_experiment(20.0)

    def test_stateless_comparison_direction(self):
        stateless, stateful = run_stateless_comparison(duration=1200.0)
        assert stateless > 5 * max(1, stateful)

    def test_damping_ablation(self):
        # Needs the full default horizon: the damped route's penalty
        # takes ~45 minutes to decay below the reuse threshold.
        result = run_damping_study()
        assert all(result.all_checks().values()), result.all_checks()

    def test_route_server_ablation(self):
        result = run_route_server_study(n_providers=6)
        assert all(result.all_checks().values()), result.all_checks()
