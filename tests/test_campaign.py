"""Tests for the campaign layer: config, merge protocol, sharded
determinism, and manifest-based resume.

The determinism contract is the load-bearing one: an N-shard run on a
process pool must be bit-identical to the single-process run of the
same config.  That only holds because every merge below is associative
with an explicit identity — so those properties get their own tests,
over randomized shard splits and fold orders.
"""

import json
import random

import numpy as np
import pytest

from repro.analysis.interarrival import FIGURE8_BINS, histogram_counts
from repro.analysis.timeseries import BinnedSeries
from repro.campaign import (
    CampaignConfig,
    CampaignLayout,
    ConfigMismatch,
    PartialResult,
    merge_partials,
    run_campaign,
    run_shard,
)
from repro.core.instability import CategoryCounts
from repro.core.taxonomy import UpdateCategory

# Small population: ~13k records/day keeps each test run sub-second.
FAST = dict(n_peers=8, total_prefixes=240)


def fast_config(**overrides) -> CampaignConfig:
    params = dict(days=3, seed=5, shards=3, **FAST)
    params.update(overrides)
    return CampaignConfig(**params)


def shard_partials(config: CampaignConfig):
    """Each planned shard's PartialResult, computed inline."""
    return [run_shard(config, spec)[0] for spec in config.shard_plan()]


class TestCampaignConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(days=0)
        with pytest.raises(ValueError):
            CampaignConfig(days=3, shards=4)  # more shards than days
        with pytest.raises(ValueError):
            CampaignConfig(shards=0)
        with pytest.raises(ValueError):
            CampaignConfig(bin_width=7.0)  # does not divide a day
        with pytest.raises(KeyError):
            CampaignConfig(exchanges=("Mae-Nowhere",))
        with pytest.raises(KeyError):
            CampaignConfig(categories=("AADIFF", "NOT_A_CATEGORY"))

    def test_day_ranges_partition_the_campaign(self):
        for days in (1, 3, 7, 14, 30):
            for shards in sorted({1, min(2, days), min(3, days), min(5, days)}):
                ranges = CampaignConfig(
                    days=days, shards=shards
                ).day_ranges()
                assert ranges[0][0] == 0
                assert ranges[-1][1] == days
                for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                    assert hi == lo  # contiguous
                sizes = [hi - lo for lo, hi in ranges]
                assert max(sizes) - min(sizes) <= 1  # near-equal

    def test_shard_plan_is_exchange_major_and_contiguous(self):
        config = CampaignConfig(
            days=4, shards=2, exchanges=("Mae-East", "AADS")
        )
        plan = config.shard_plan()
        assert [s.index for s in plan] == [0, 1, 2, 3]
        assert [s.exchange for s in plan] == [
            "Mae-East", "Mae-East", "AADS", "AADS"
        ]
        # Distinct exchanges get distinct generator seeds; the first
        # exchange keeps the config's own seed.
        assert plan[0].generator_seed == config.seed
        assert plan[2].generator_seed != config.seed

    def test_payload_round_trip_and_fingerprint(self):
        config = fast_config(categories=("AADIFF", "WADUP"))
        again = CampaignConfig.from_payload(config.to_payload())
        assert again == config
        assert again.fingerprint() == config.fingerprint()
        # out is not part of the workload identity.
        moved = CampaignConfig.from_payload(
            config.to_payload(), out="/tmp/elsewhere"
        )
        assert moved.fingerprint() == config.fingerprint()
        assert fast_config(seed=6).fingerprint() != config.fingerprint()

    def test_category_names_normalized(self):
        config = fast_config(categories=("aadiff", "WaDup"))
        assert config.categories == ("AADIFF", "WADUP")
        assert config.category_set() == (
            UpdateCategory.AADIFF, UpdateCategory.WADUP
        )


class TestMergeProtocol:
    """Identity + associativity for every mergeable aggregate."""

    def test_category_counts_identity_and_sum(self):
        counts = CategoryCounts.from_dict({"AADUP": 3, "WWDUP": 9}, 2)
        assert (0 + counts).as_dict() == counts.as_dict()
        total = sum([counts, counts])  # int 0 start value
        assert total.counts[UpdateCategory.AADUP] == 6
        assert total.policy_changes == 4

    def test_category_counts_associative(self):
        rng = random.Random(1)
        names = [c.name for c in UpdateCategory]
        parts = [
            CategoryCounts.from_dict(
                {name: rng.randrange(5) for name in names},
                rng.randrange(3),
            )
            for _ in range(6)
        ]
        left = sum(parts)
        right = parts[0] + (parts[1] + (parts[2] + sum(parts[3:])))
        assert left.as_dict() == right.as_dict()
        assert left.policy_changes == right.policy_changes

    def test_binned_series_identity(self):
        series = BinnedSeries(
            offset=10, counts=np.array([1, 2, 3], dtype=np.int64)
        )
        for merged in (BinnedSeries.empty() + series,
                       series + BinnedSeries.empty(),
                       0 + series):
            assert merged == series

    def test_binned_series_merges_disjoint_and_overlapping(self):
        a = BinnedSeries(offset=0, counts=np.array([1, 1], dtype=np.int64))
        b = BinnedSeries(offset=3, counts=np.array([5], dtype=np.int64))
        merged = a + b
        assert merged.offset == 0
        assert merged.counts.tolist() == [1, 1, 0, 5]
        overlap = merged + BinnedSeries(
            offset=1, counts=np.array([10, 10], dtype=np.int64)
        )
        assert overlap.counts.tolist() == [1, 11, 10, 5]

    def test_binned_series_width_mismatch_raises(self):
        a = BinnedSeries(offset=0, counts=np.ones(2, dtype=np.int64))
        b = BinnedSeries(
            offset=0, counts=np.ones(2, dtype=np.int64), width=300.0
        )
        with pytest.raises(ValueError):
            a + b

    def test_histogram_counts_merge_is_vector_addition(self):
        gaps = np.array([31.0, 31.0, 400.0])
        whole = histogram_counts(np.concatenate([gaps, gaps]))
        assert (whole == histogram_counts(gaps) * 2).all()
        assert whole.sum() == 6
        assert len(whole) == len(FIGURE8_BINS)

    def test_partial_result_identity(self):
        partial = shard_partials(fast_config(days=1, shards=1))[0]
        for merged in (PartialResult.empty() + partial,
                       partial + PartialResult.empty(),
                       0 + partial):
            assert merged.digest() == partial.digest()

    def test_partial_result_associative_over_fold_trees(self):
        """Real shard partials merged in randomized tree shapes all
        produce the same digest."""
        parts = shard_partials(fast_config(days=4, shards=4))
        reference = merge_partials(parts).digest()
        rng = random.Random(7)
        for _ in range(5):
            work = list(parts)
            while len(work) > 1:
                i = rng.randrange(len(work) - 1)
                work[i:i + 2] = [work[i] + work[i + 1]]
            assert work[0].digest() == reference

    def test_payload_round_trip(self):
        partial = merge_partials(shard_partials(fast_config()))
        again = PartialResult.from_payload(
            json.loads(json.dumps(partial.to_payload()))
        )
        assert again.digest() == partial.digest()
        assert again.records == partial.records
        assert again.counts.as_dict() == partial.counts.as_dict()


class TestShardedDeterminism:
    """The tentpole invariant: worker count never changes the result."""

    def test_randomized_shard_groupings_agree(self):
        """For a fixed shard plan, any random partition of the shards
        into groups — merged group-wise, then across groups — matches
        the straight shard-index-order fold.  (The shard *count* itself
        is part of the workload identity: a shard boundary is a defined
        generator/classifier restart, recorded in the fingerprint.)"""
        parts = shard_partials(fast_config(days=5, shards=5))
        reference = merge_partials(parts).digest()
        rng = random.Random(13)
        for _ in range(5):
            shuffled = list(parts)
            rng.shuffle(shuffled)
            groups = []
            while shuffled:
                take = rng.randrange(1, len(shuffled) + 1)
                groups.append(merge_partials(shuffled[:take]))
                shuffled = shuffled[take:]
            assert merge_partials(groups).digest() == reference

    def test_pool_matches_single_process(self):
        """>= 3 shards on a 3-worker pool, bit-identical to inline."""
        config = fast_config(days=3, shards=3)
        inline = run_campaign(config, workers=1)
        pooled = run_campaign(config, workers=3)
        assert inline.complete and pooled.complete
        assert pooled.partial.digest() == inline.partial.digest()
        assert pooled.partial.to_payload() == inline.partial.to_payload()
        assert (pooled.bin_counts() == inline.bin_counts()).all()

    def test_multi_exchange_campaign_merges_per_exchange(self):
        config = fast_config(
            days=2, shards=2, exchanges=("Mae-East", "AADS")
        )
        result = run_campaign(config)
        assert set(result.partial.by_exchange) == {"Mae-East", "AADS"}
        by_exchange_total = sum(
            counts.total for counts in result.partial.by_exchange.values()
        )
        assert by_exchange_total == result.counts.total


class TestResume:
    def test_killed_run_resumes_without_regenerating(self, tmp_path):
        config = fast_config(out=str(tmp_path / "camp"))
        # A "killed" run: two of three shards complete.
        partial_run = run_campaign(config, stop_after=2)
        assert not partial_run.complete
        assert partial_run.shards_run == 2
        manifests = sorted(
            p.name for p in (tmp_path / "camp" / "manifest").iterdir()
        )
        assert manifests == ["shard-0000.json", "shard-0001.json"]

        resumed = run_campaign(config, resume=True)
        assert resumed.complete
        assert resumed.shards_loaded == 2  # finished days not regenerated
        assert resumed.shards_run == 1

        fresh = run_campaign(fast_config())  # in-memory reference
        assert resumed.partial.digest() == fresh.partial.digest()

    def test_resume_rejects_mismatched_config(self, tmp_path):
        out = str(tmp_path / "camp")
        run_campaign(fast_config(out=out), stop_after=1)
        with pytest.raises(ConfigMismatch):
            run_campaign(fast_config(seed=99, out=out), resume=True)

    def test_corrupt_result_is_recomputed(self, tmp_path):
        config = fast_config(out=str(tmp_path / "camp"))
        run_campaign(config)
        layout = CampaignLayout(config.out)
        spec = config.shard_plan()[1]
        layout.result_path(spec).write_text('{"records": 0}\n')
        resumed = run_campaign(config, resume=True)
        assert resumed.complete
        assert resumed.shards_loaded == 2  # the intact shards
        assert resumed.shards_run == 1  # the corrupted one, re-run
        fresh = run_campaign(fast_config())
        assert resumed.partial.digest() == fresh.partial.digest()

    def test_manifest_records_chunk_digests(self, tmp_path):
        config = fast_config(days=2, shards=1, out=str(tmp_path / "camp"))
        run_campaign(config)
        layout = CampaignLayout(config.out)
        spec = config.shard_plan()[0]
        manifest = json.loads(layout.manifest_path(spec).read_text())
        assert manifest["schema"] == 2
        assert manifest["records"] > 0
        assert len(manifest["result_sha256"]) == 64
        # One chunk descriptor per day, each matching its file's
        # independently recomputed digest and row count.
        from repro.core.spill import verify_chunk

        assert [c["day"] for c in manifest["chunks"]] == [0, 1]
        for entry in manifest["chunks"]:
            assert entry["file"].startswith("shards/shard-0000/")
            info = verify_chunk(layout.root / entry["file"])
            assert info.rows == entry["rows"] > 0
            assert info.sha256 == entry["sha256"]
            assert len(entry["sha256"]) == 64

    def test_archived_run_matches_in_memory_run(self, tmp_path):
        """The archive round trip (write → decode) is lossless."""
        config = fast_config(days=2, shards=2)
        on_disk = run_campaign(
            fast_config(days=2, shards=2, out=str(tmp_path / "camp"))
        )
        in_memory = run_campaign(config)
        assert on_disk.partial.digest() == in_memory.partial.digest()


class TestOutOfCore:
    """The out-of-core tier: streaming fold, in-process fast path,
    and day-level chunk reuse on resume."""

    def test_streaming_fold_matches_whole_batch_reference(self):
        """ShardAccumulator fed day by day reproduces the aggregates
        computed over the shard's days as one concatenated batch."""
        from repro.analysis.interarrival import interarrival_columns
        from repro.campaign import ShardAccumulator
        from repro.core.columns import (
            AttributeTable,
            ColumnClassifier,
            RecordColumns,
        )
        from repro.core.instability import CategoryCounts
        from repro.workloads.generator import campaign_generator

        config = fast_config(days=4, shards=1)
        spec = config.shard_plan()[0]

        accumulator = ShardAccumulator(config, spec)
        generator = campaign_generator(
            n_peers=config.n_peers,
            total_prefixes=config.total_prefixes,
            population_seed=spec.population_seed,
            generator_seed=spec.generator_seed,
        )
        batches = []
        for day in spec.days:
            columns = generator.day_columns(
                day, pair_fraction=1.0, attrs=AttributeTable()
            )
            batches.append(columns)
            accumulator.fold_day(day, columns)
        streamed = accumulator.result()

        whole = RecordColumns.concat(batches)
        codes, policy = ColumnClassifier().classify(whole)
        assert streamed.records == len(whole)
        assert (
            streamed.counts.as_dict()
            == CategoryCounts.from_codes(codes, policy).as_dict()
        )
        # Bins: dense over the shard window, bit-identical.
        reference_bins = BinnedSeries.from_records(
            whole,
            config.bin_width,
            start=spec.day_lo * 86400.0,
            end=spec.day_hi * 86400.0,
        )
        assert streamed.bins == reference_bins
        # Inter-arrival: the day-boundary carry recovers every
        # cross-day gap the whole-batch lexsort sees.
        whole_hist = histogram_counts(interarrival_columns(whole))
        assert (streamed.interarrival["TOTAL"] == whole_hist).all()
        from repro.core.taxonomy import FINE_GRAINED_CATEGORIES

        for category in FINE_GRAINED_CATEGORIES:
            expected = histogram_counts(
                interarrival_columns(whole, codes, category)
            )
            assert (
                streamed.interarrival[category.name] == expected
            ).all()

    def test_single_worker_never_spawns_a_pool(self, monkeypatch):
        """The workers=1 fast path must not touch multiprocessing."""
        import repro.campaign.runner as runner_module

        def explode():
            raise AssertionError("workers=1 spawned a process pool")

        monkeypatch.setattr(runner_module, "_pool_context", explode)
        result = run_campaign(fast_config(), workers=1)
        assert result.complete

    def test_shm_handoff_round_trip_verifies_digest(self):
        from repro.campaign import HandoffError
        from repro.campaign.handoff import collect_partial, publish_partial

        config = fast_config(days=1, shards=1)
        spec = config.shard_plan()[0]
        partial = run_shard(config, spec)[0]
        handoff = publish_partial(
            spec, partial.to_payload(), partial.records, [], layout=None
        )
        assert handoff.transport in ("shm", "inline")
        payload = collect_partial(handoff, None, spec)
        assert (
            PartialResult.from_payload(payload).digest()
            == partial.digest()
        )
        # A tampered digest must be caught, not merged.
        handoff2 = publish_partial(
            spec, partial.to_payload(), partial.records, [], layout=None
        )
        handoff2.result_sha256 = "0" * 64
        with pytest.raises(HandoffError):
            collect_partial(handoff2, None, spec)

    def test_mid_shard_kill_resumes_at_first_unfinished_day(
        self, tmp_path
    ):
        """A run killed between day chunks leaves a partial chunk
        trail; the restarted shard reuses the finished days and
        generates only from the first unfinished one."""
        from repro.campaign import CampaignHooks, KillRun

        config = fast_config(
            days=4, shards=1, out=str(tmp_path / "camp")
        )
        spec = config.shard_plan()[0]

        def kill_after_day_1(spec_, day, how):
            if day == 1:
                raise KillRun("killed after day 1's chunk")

        with pytest.raises(KillRun):
            run_campaign(
                config, hooks=CampaignHooks(on_chunk=kill_after_day_1)
            )
        layout = CampaignLayout(config.out)
        # Days 0 and 1 spilled; the manifest never happened.
        assert layout.completed([spec]) == {}
        assert layout.first_unfinished_day(spec) == 2

        seen = []
        resumed = run_campaign(
            config,
            resume=True,
            hooks=CampaignHooks(
                on_chunk=lambda s, day, how: seen.append((day, how))
            ),
        )
        assert seen == [
            (0, "loaded"), (1, "loaded"),
            (2, "generated"), (3, "generated"),
        ]
        assert resumed.complete
        fresh = run_campaign(fast_config(days=4, shards=1))
        assert resumed.partial.digest() == fresh.partial.digest()

    def test_corrupt_chunk_regenerated_on_resume(self, tmp_path):
        from repro.core.spill import ChunkCorrupt, verify_chunk

        config = fast_config(
            days=3, shards=1, out=str(tmp_path / "camp")
        )
        run_campaign(config)
        layout = CampaignLayout(config.out)
        spec = config.shard_plan()[0]
        chunk = layout.chunk_path(spec, 1)
        good = chunk.read_bytes()
        chunk.write_bytes(good[:100])
        with pytest.raises(ChunkCorrupt):
            verify_chunk(chunk)
        # The manifested shard no longer verifies; resume re-runs it,
        # reusing the intact chunks and regenerating the damaged day
        # to identical bytes.
        assert layout.load_shard(spec) is None
        assert layout.first_unfinished_day(spec) == 1
        resumed = run_campaign(config, resume=True)
        assert resumed.shards_run == 1
        assert chunk.read_bytes() == good
        fresh = run_campaign(fast_config(days=3, shards=1))
        assert resumed.partial.digest() == fresh.partial.digest()


class TestCampaignResult:
    def test_headline_analyses(self):
        config = fast_config()
        result = run_campaign(config)
        assert result.records == result.counts.total
        bins = result.bin_counts()
        assert len(bins) == config.total_bins
        assert bins.sum() == result.records
        daily = result.daily_totals()
        assert len(daily) == config.days
        assert daily.sum() == result.records
        assert 0.0 <= result.timer_mass <= 1.0
        fractions = result.affected_fractions()
        assert ((fractions > 0) & (fractions <= 1)).all()
