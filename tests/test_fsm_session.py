"""Unit tests for the BGP FSM and peering session timing."""

import pytest

from repro.bgp.fsm import (
    BgpStateMachine,
    FsmEvent,
    SessionState,
)
from repro.bgp.fsm import FsmError
from repro.bgp.messages import (
    KeepAliveMessage,
    NotificationCode,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.session import ActionKind, PeeringSession


class TestFsm:
    def test_happy_path_to_established(self):
        fsm = BgpStateMachine()
        fsm.handle(FsmEvent.MANUAL_START)
        fsm.handle(FsmEvent.TCP_ESTABLISHED)
        fsm.handle(FsmEvent.OPEN_RECEIVED)
        fsm.handle(FsmEvent.KEEPALIVE_RECEIVED)
        assert fsm.state is SessionState.ESTABLISHED
        assert fsm.established_count == 1

    def test_hold_expiry_drops_to_idle(self):
        fsm = BgpStateMachine()
        for ev in (
            FsmEvent.MANUAL_START,
            FsmEvent.TCP_ESTABLISHED,
            FsmEvent.OPEN_RECEIVED,
            FsmEvent.KEEPALIVE_RECEIVED,
        ):
            fsm.handle(ev)
        fsm.handle(FsmEvent.HOLD_TIMER_EXPIRED)
        assert fsm.state is SessionState.IDLE
        assert fsm.drop_count == 1

    def test_update_before_established_is_fsm_error(self):
        fsm = BgpStateMachine()
        fsm.handle(FsmEvent.MANUAL_START)
        with pytest.raises(FsmError):
            fsm.handle(FsmEvent.UPDATE_RECEIVED)

    def test_tcp_failure_during_connect(self):
        fsm = BgpStateMachine()
        fsm.handle(FsmEvent.MANUAL_START)
        fsm.handle(FsmEvent.TCP_FAILED)
        assert fsm.state is SessionState.IDLE

    def test_history_records_transitions(self):
        fsm = BgpStateMachine()
        fsm.handle(FsmEvent.MANUAL_START, now=1.0)
        fsm.handle(FsmEvent.TCP_ESTABLISHED, now=2.0)
        assert [t.after for t in fsm.history] == [
            SessionState.CONNECT,
            SessionState.OPEN_SENT,
        ]
        assert fsm.history[0].time == 1.0

    def test_updates_keep_established(self):
        fsm = BgpStateMachine()
        for ev in (
            FsmEvent.MANUAL_START,
            FsmEvent.TCP_ESTABLISHED,
            FsmEvent.OPEN_RECEIVED,
            FsmEvent.KEEPALIVE_RECEIVED,
        ):
            fsm.handle(ev)
        before = len(fsm.history)
        fsm.handle(FsmEvent.UPDATE_RECEIVED)
        assert fsm.state is SessionState.ESTABLISHED
        assert len(fsm.history) == before  # no transition recorded


def establish(session, now=0.0):
    """Drive a session to Established; returns actions from the last step."""
    session.start(now)
    session.on_open(now, OpenMessage(asn=session.peer_asn, hold_time=90.0))
    return session.on_keepalive(now)


class TestPeeringSession:
    def test_establishment_emits_session_up(self):
        s = PeeringSession(local_asn=701, peer_asn=1239)
        actions = establish(s)
        assert any(a.kind is ActionKind.SESSION_UP for a in actions)
        assert s.is_established

    def test_start_sends_open(self):
        s = PeeringSession(local_asn=701, peer_asn=1239, hold_time=90.0)
        actions = s.start(0.0)
        assert actions[0].kind is ActionKind.SEND_OPEN
        assert actions[0].message.asn == 701

    def test_hold_time_negotiated_to_minimum(self):
        s = PeeringSession(local_asn=701, peer_asn=1239, hold_time=90.0)
        s.start(0.0)
        s.on_open(0.0, OpenMessage(asn=1239, hold_time=30.0))
        assert s.hold_time == 30.0
        assert s.keepalive_interval == pytest.approx(10.0)

    def test_keepalive_due_every_third_of_hold(self):
        s = PeeringSession(local_asn=701, peer_asn=1239, hold_time=90.0)
        establish(s, now=0.0)
        assert s.poll(29.0) == []
        actions = s.poll(30.0)
        assert [a.kind for a in actions] == [ActionKind.SEND_KEEPALIVE]
        # Next one due 30s later.
        assert s.poll(31.0) == []
        assert s.poll(60.0)[0].kind is ActionKind.SEND_KEEPALIVE

    def test_hold_timer_expiry_tears_down_and_restarts(self):
        s = PeeringSession(local_asn=701, peer_asn=1239, hold_time=90.0)
        establish(s, now=0.0)
        actions = s.poll(90.0)
        kinds = [a.kind for a in actions]
        assert ActionKind.SEND_NOTIFICATION in kinds
        assert ActionKind.SESSION_DOWN in kinds
        assert ActionKind.RESTART in kinds
        assert not s.is_established

    def test_received_traffic_refreshes_hold(self):
        s = PeeringSession(local_asn=701, peer_asn=1239, hold_time=90.0)
        establish(s, now=0.0)
        s.on_update(60.0, UpdateMessage())
        # Hold would have expired at t=90 without the update at t=60.
        down = [
            a for a in s.poll(95.0) if a.kind is ActionKind.SESSION_DOWN
        ]
        assert not down
        assert s.is_established

    def test_notification_drops_session(self):
        s = PeeringSession(local_asn=701, peer_asn=1239)
        establish(s, now=0.0)
        actions = s.on_notification(
            1.0, NotificationMessage(NotificationCode.CEASE)
        )
        kinds = [a.kind for a in actions]
        assert ActionKind.SESSION_DOWN in kinds
        assert ActionKind.RESTART in kinds

    def test_stop_sends_cease(self):
        s = PeeringSession(local_asn=701, peer_asn=1239)
        establish(s, now=0.0)
        actions = s.stop(5.0)
        assert actions[0].kind is ActionKind.SEND_NOTIFICATION
        assert actions[0].message.code is NotificationCode.CEASE
        assert any(a.kind is ActionKind.SESSION_DOWN for a in actions)

    def test_next_deadline_reports_sooner_timer(self):
        s = PeeringSession(local_asn=701, peer_asn=1239, hold_time=90.0)
        establish(s, now=0.0)
        # Keepalive (t=30) is sooner than hold (t=90).
        assert s.next_deadline() == pytest.approx(30.0)

    def test_poll_idle_session_is_noop(self):
        s = PeeringSession(local_asn=701, peer_asn=1239)
        assert s.poll(1000.0) == []
