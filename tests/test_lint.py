"""Tests for ``repro.lint``: per-rule fixtures, pragmas, baseline, CLI.

Each rule gets at least a positive fixture (a snippet the rule must
flag — these tests fail if the rule is deleted), a negative fixture
(the compliant spelling), an aliased/edge variant the old regex audit
could not see, and a pragma-suppressed case.  ``TestRepoIsClean`` is
the tier-1 gate that replaced the regex determinism audit: the whole
repo at HEAD must lint clean with an empty baseline.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LintEngine,
    apply_baseline,
    load_baseline,
    rules_by_id,
    write_baseline,
)

ROOT = Path(__file__).parent.parent


def lint_snippets(tmp_path, files, rule=None):
    """Write fixture files, lint them, return findings for ``rule``
    (or all findings when rule is None)."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    rules = None if rule is None else rules_by_id(rule)
    findings = LintEngine(tmp_path, rules=rules).lint_paths(
        [tmp_path]
    ).findings
    if rule is None:
        return findings
    return [f for f in findings if f.rule == rule]


class TestDET001GlobalRandom:
    def test_flags_module_level_call(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import random
                value = random.randint(0, 10)
                """
            },
            rule="DET001",
        )
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "random.randint" in findings[0].message

    def test_flags_aliased_imports_the_regex_missed(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                from random import randint as ri
                import random as rnd

                def roll(deck):
                    rnd.shuffle(deck)
                    return ri(1, 6)
                """
            },
            rule="DET001",
        )
        assert {f.line for f in findings} == {6, 7}

    def test_seeded_instances_are_compliant(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import random
                import numpy as np

                rng = random.Random(42)
                value = rng.randint(0, 10)
                gen = np.random.default_rng(7)
                entropy = random.SystemRandom()
                """
            },
            rule="DET001",
        )
        assert findings == []

    def test_pragma_suppresses_with_justification(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import random
                # lint: allow[DET001] -- fixture: demo of the pragma path
                token = random.getrandbits(32)
                """
            },
            rule="DET001",
        )
        assert findings == []


class TestDET002WallClock:
    def test_flags_wall_clock_reads(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import time
                from datetime import datetime

                def stamp():
                    return time.time(), datetime.now()
                """
            },
            rule="DET002",
        )
        assert {f.line for f in findings} == {6}
        assert len(findings) == 2

    def test_flags_from_import_alias(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                from time import perf_counter as tick

                def elapsed():
                    return tick()
                """
            },
            rule="DET002",
        )
        assert len(findings) == 1
        assert "time.perf_counter" in findings[0].message

    def test_simulated_clocks_are_compliant(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import time

                def run(engine):
                    time.sleep(0)  # not a clock *read*
                    return engine.now  # simulated time is the point
                """
            },
            rule="DET002",
        )
        assert findings == []

    def test_pragma_suppresses_display_only_timing(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import time

                def report():
                    # lint: allow[DET002] -- display-only elapsed line
                    return time.perf_counter()
                """
            },
            rule="DET002",
        )
        assert findings == []


class TestDET003UnsortedIteration:
    def test_flags_set_and_listing_iteration(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import os

                def collect(root, names):
                    unique = set(names)
                    out = []
                    for name in unique:
                        out.append(name)
                    for entry in os.listdir(root):
                        out.append(entry)
                    for path in root.iterdir():
                        out.append(path)
                    return out
                """
            },
            rule="DET003",
        )
        assert {f.line for f in findings} == {7, 9, 11}

    def test_flags_dict_keys_of_known_dict(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                def tally(events):
                    buckets = {}
                    names = [key for key in buckets.keys()]
                    return names
                """
            },
            rule="DET003",
        )
        assert len(findings) == 1

    def test_sorted_and_reducers_are_compliant(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import os

                def collect(root, names):
                    unique = set(names)
                    ordered = sorted(unique)
                    listed = sorted(os.listdir(root))
                    nested = sorted(str(p) for p in root.glob("x*"))
                    count = len({n for n in names})
                    total = sum(x for x in unique)
                    return ordered, listed, nested, count, total
                """
            },
            rule="DET003",
        )
        assert findings == []

    def test_pragma_suppresses_order_free_loop(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                def visit(pending):
                    seen = set(pending)
                    # lint: allow[DET003] -- fixture: order-free marking
                    for item in seen:
                        item.mark()
                """
            },
            rule="DET003",
        )
        assert findings == []


class TestDET004BuiltinHash:
    def test_flags_hash_of_str_literal_and_fstring(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                seed = hash("Mae-East") & 0xFFFF
                salted = hash(f"shard-{seed}")
                """
            },
            rule="DET004",
        )
        assert {f.line for f in findings} == {2, 3}

    def test_flags_str_via_annotation(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                def seed_for(name: str) -> int:
                    return hash(name) & 0xFFFF
                """
            },
            rule="DET004",
        )
        assert len(findings) == 1
        assert "PYTHONHASHSEED" in findings[0].message

    def test_int_tuple_hashes_are_compliant(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                def seed_for(pair, n: int) -> int:
                    return hash(pair) ^ hash((n, 3))
                """
            },
            rule="DET004",
        )
        assert findings == []

    def test_flags_tuple_with_textual_element(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                def seed_for(name: str, n: int) -> int:
                    return hash((name, n)) & 0xFFFF
                """
            },
            rule="DET004",
        )
        assert len(findings) == 1
        assert "tuple" in findings[0].message
        assert "PYTHONHASHSEED" in findings[0].message

    def test_flags_nested_tuple_with_str_literal(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                salted = hash((1, ("Mae-East", 2)))
                """
            },
            rule="DET004",
        )
        assert len(findings) == 1

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                def cache_slot(key: str) -> int:
                    # lint: allow[DET004] -- fixture: in-process only
                    return hash(key) % 64
                """
            },
            rule="DET004",
        )
        assert findings == []


class TestHOT001Slots:
    def test_flags_unslotted_class_in_hot_module(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "repro/core/state.py": """
                class RouteState:
                    def __init__(self):
                        self.reachable = False
                """
            },
            rule="HOT001",
        )
        assert len(findings) == 1
        assert "RouteState" in findings[0].message

    def test_slots_and_dataclass_slots_are_compliant(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "repro/core/state.py": """
                from dataclasses import dataclass
                from enum import Enum


                class Kind(Enum):
                    A = 1


                class LookupError2(ValueError):
                    pass


                class Packed:
                    __slots__ = ("x",)


                @dataclass(frozen=True, slots=True)
                class Record:
                    x: int
                """
            },
            rule="HOT001",
        )
        assert findings == []

    def test_cold_modules_are_out_of_scope(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "repro/analysis/free.py": """
                class Anything:
                    pass
                """
            },
            rule="HOT001",
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "repro/core/state.py": """
                # lint: allow[HOT001] -- fixture: instantiated once
                class Singleton:
                    pass
                """
            },
            rule="HOT001",
        )
        assert findings == []


class TestMRG001MergeRegistry:
    def test_flags_unregistered_add(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "campaign/results.py": """
                from dataclasses import dataclass, field


                @dataclass
                class Partial:
                    records: int = 0

                    def __add__(self, other):
                        return Partial(records=self.records + other.records)

                    __radd__ = __add__
                """
            },
            rule="MRG001",
        )
        assert len(findings) == 1
        assert "COMMUTATIVE_MERGES" in findings[0].message

    def test_flags_field_missing_from_add(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "campaign/results.py": """
                from dataclasses import dataclass, field


                @dataclass
                class Partial:
                    records: int = 0
                    dropped: int = 0

                    def __add__(self, other):
                        return Partial(records=self.records + other.records)

                    __radd__ = __add__


                COMMUTATIVE_MERGES = (Partial,)
                """
            },
            rule="MRG001",
        )
        assert len(findings) == 1
        assert "dropped" in findings[0].message

    def test_flags_missing_radd(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "campaign/results.py": """
                from dataclasses import dataclass, field


                @dataclass
                class Partial:
                    records: int = 0

                    def __add__(self, other):
                        return Partial(records=self.records + other.records)


                COMMUTATIVE_MERGES = (Partial,)
                """
            },
            rule="MRG001",
        )
        assert len(findings) == 1
        assert "__radd__" in findings[0].message

    def test_registered_and_complete_is_compliant(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "campaign/results.py": """
                from dataclasses import dataclass, field


                @dataclass
                class Partial:
                    records: int = 0
                    tallies: dict = field(default_factory=dict)

                    def __add__(self, other):
                        merged = dict(self.tallies)
                        for key, value in other.tallies.items():
                            merged[key] = merged.get(key, 0) + value
                        return Partial(
                            records=self.records + other.records,
                            tallies=merged,
                        )

                    __radd__ = __add__


                COMMUTATIVE_MERGES = (Partial,)
                """
            },
            rule="MRG001",
        )
        assert findings == []

    def test_other_modules_are_out_of_scope(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "analysis/series.py": """
                class Series:
                    def __add__(self, other):
                        return other
                """
            },
            rule="MRG001",
        )
        assert findings == []


class TestLINT000Pragmas:
    def test_malformed_pragma(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {"mod.py": "x = 1  # lint: allowDET001 oops\n"},
        )
        assert [f.rule for f in findings] == ["LINT000"]
        assert "malformed" in findings[0].message

    def test_justification_is_required(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import random
                random.random()  # lint: allow[DET001]
                """
            },
        )
        rules = sorted(f.rule for f in findings)
        # The grant is refused AND the violation it aimed at still fires.
        assert rules == ["DET001", "LINT000"]
        assert "justification" in findings[0].message or (
            "justification" in findings[1].message
        )

    def test_unknown_rule_id(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {"mod.py": "x = 1  # lint: allow[ZZZ999] -- because\n"},
        )
        assert [f.rule for f in findings] == ["LINT000"]
        assert "ZZZ999" in findings[0].message

    def test_stale_pragma(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                # lint: allow[DET001] -- nothing here draws randomness
                x = 1
                """
            },
        )
        assert [f.rule for f in findings] == ["LINT000"]
        assert "stale" in findings[0].message

    def test_used_pragma_is_not_stale(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {
                "mod.py": """
                import random
                # lint: allow[DET001] -- fixture justification
                random.random()
                """
            },
        )
        assert findings == []

    def test_pragma_inside_string_is_ignored(self, tmp_path):
        findings = lint_snippets(
            tmp_path,
            {"mod.py": 'doc = "# lint: allow[DET001] -- not a comment"\n'},
        )
        assert findings == []


class TestBaseline:
    def test_baseline_absorbs_exactly_its_multiset(self, tmp_path):
        files = {
            "mod.py": """
            import random
            a = random.random()
            b = random.random()
            """
        }
        findings = lint_snippets(tmp_path, files, rule="DET001")
        assert len(findings) == 2
        baseline_path = tmp_path / "baseline.json"
        # Baseline only the first occurrence: the second (same snippet,
        # same rule, same file) must still fail the run.
        write_baseline(baseline_path, findings[:1])
        new, matched = apply_baseline(
            findings, load_baseline(baseline_path)
        )
        assert matched == 1
        assert len(new) == 1

    def test_round_trip_is_clean(self, tmp_path):
        files = {
            "repro/core/hot.py": """
            class Unslotted:
                pass
            """
        }
        findings = lint_snippets(tmp_path, files, rule="HOT001")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        new, matched = apply_baseline(
            findings, load_baseline(baseline_path)
        )
        assert new == []
        assert matched == len(findings)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}


def run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


@pytest.fixture
def fixture_repo(tmp_path):
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("class Unslotted:\n    pass\n")
    return tmp_path


class TestCli:
    def test_exit_one_and_json_schema_on_findings(self, fixture_repo):
        result = run_cli(["--json"], cwd=fixture_repo)
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["schema"] == 2
        assert report["counts"] == {"HOT001": 1}
        assert report["baselined"] == 0
        assert report["suppressed"] == 0
        (finding,) = report["findings"]
        assert finding["rule"] == "HOT001"
        assert finding["path"] == "src/repro/core/bad.py"
        assert finding["line"] == 1
        assert finding["snippet"] == "class Unslotted:"
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "snippet",
        }

    def test_exit_zero_when_clean(self, fixture_repo):
        (fixture_repo / "src" / "repro" / "core" / "bad.py").write_text(
            "class Packed:\n    __slots__ = ()\n"
        )
        result = run_cli([], cwd=fixture_repo)
        assert result.returncode == 0
        assert "0 new finding(s)" in result.stdout

    def test_fix_baseline_then_clean(self, fixture_repo):
        first = run_cli(["--fix-baseline"], cwd=fixture_repo)
        assert first.returncode == 0
        baseline = json.loads(
            (fixture_repo / "lint-baseline.json").read_text()
        )
        assert len(baseline["findings"]) == 1
        second = run_cli([], cwd=fixture_repo)
        assert second.returncode == 0
        assert "1 baselined" in second.stdout

    def test_output_writes_report_file(self, fixture_repo):
        result = run_cli(
            ["--output", "report.json"], cwd=fixture_repo
        )
        assert result.returncode == 1
        report = json.loads((fixture_repo / "report.json").read_text())
        assert report["counts"] == {"HOT001": 1}

    def test_usage_error_exit_two(self, tmp_path):
        result = run_cli(["--root", "does-not-exist"], cwd=tmp_path)
        assert result.returncode == 2

    def test_list_rules_names_all_fourteen(self, tmp_path):
        result = run_cli(["--list-rules"], cwd=tmp_path)
        assert result.returncode == 0
        for rule_id in (
            "LINT000", "DET001", "DET002", "DET003", "DET004",
            "DET101", "DET102", "DET103", "DET104", "DET105",
            "HOT001", "MRG001", "CON001", "PRO001",
        ):
            assert rule_id in result.stdout


class TestRepoIsClean:
    """The tier-1 gate: the repo at HEAD lints clean, empty baseline."""

    def test_src_and_tests_have_no_findings(self):
        engine = LintEngine(ROOT)
        report = engine.lint_paths([ROOT / "src", ROOT / "tests"])
        assert report.files > 100, "gate is not seeing the repo"
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(ROOT / "lint-baseline.json")
        assert sum(baseline.values()) == 0, (
            "policy: fix or pragma-justify findings instead of "
            "baselining them (see docs/LINTING.md)"
        )
