"""Unit and property tests for the collector subpackage."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.collector.log import CountingLog, FileLog, MemoryLog, open_log
from repro.collector.mrt import MAGIC, MrtError, read_records, write_records
from repro.collector.record import (
    UpdateKind,
    UpdateRecord,
    count_by_kind,
    flatten_update,
    unique_prefixes,
)
from repro.collector.store import SECONDS_PER_DAY, DayStore, day_of
from repro.net.prefix import Prefix

from .test_prefix import prefixes

P = Prefix.parse


def announce(time=0.0, peer=1, asn=701, prefix="10.0.0.0/8", path=(701,), **kw):
    return UpdateRecord(
        time,
        peer,
        asn,
        P(prefix),
        UpdateKind.ANNOUNCE,
        PathAttributes(as_path=AsPath(path), **kw),
    )


def withdraw(time=0.0, peer=1, asn=701, prefix="10.0.0.0/8"):
    return UpdateRecord(time, peer, asn, P(prefix), UpdateKind.WITHDRAW)


class TestUpdateRecord:
    def test_announce_requires_attributes(self):
        with pytest.raises(ValueError):
            UpdateRecord(0.0, 1, 701, P("10.0.0.0/8"), UpdateKind.ANNOUNCE)

    def test_withdraw_rejects_attributes(self):
        with pytest.raises(ValueError):
            UpdateRecord(
                0.0, 1, 701, P("10.0.0.0/8"), UpdateKind.WITHDRAW,
                PathAttributes(),
            )

    def test_prefix_as_pairing(self):
        rec = announce(asn=1239, prefix="192.0.2.0/24")
        assert rec.prefix_as == (P("192.0.2.0/24"), 1239)

    def test_forwarding_tuple(self):
        rec = announce(path=(701, 1239), next_hop=5)
        assert rec.forwarding_tuple == (P("10.0.0.0/8"), 5, (701, 1239))
        assert withdraw().forwarding_tuple is None

    def test_flatten_update_counts(self):
        msg = UpdateMessage(
            withdrawn=(P("10.0.0.0/8"), P("11.0.0.0/8")),
            announced=(P("12.0.0.0/8"),),
            attributes=PathAttributes(as_path=AsPath((7,))),
        )
        records = flatten_update(5.0, 9, 701, msg)
        assert len(records) == 3
        assert count_by_kind(records) == (1, 2)
        assert all(r.time == 5.0 and r.peer_asn == 701 for r in records)

    def test_unique_prefixes(self):
        records = [withdraw(prefix="10.0.0.0/8"), withdraw(prefix="10.0.0.0/8"),
                   withdraw(prefix="11.0.0.0/8")]
        assert unique_prefixes(records) == 2


class TestMrtCodec:
    def test_roundtrip_mixed(self):
        records = [
            announce(time=1.25, peer=3, asn=701, med=9),
            withdraw(time=2.5, peer=4, asn=1239, prefix="192.0.2.0/24"),
            announce(time=3.0, path=(701, 1239, 3561), local_pref=None),
        ]
        buffer = io.BytesIO()
        assert write_records(buffer, records) == 3
        buffer.seek(0)
        back = list(read_records(buffer))
        assert back == records

    def test_microsecond_precision(self):
        rec = withdraw(time=1234.567891)
        buffer = io.BytesIO()
        write_records(buffer, [rec])
        buffer.seek(0)
        (back,) = read_records(buffer)
        assert back.time == pytest.approx(rec.time, abs=1e-6)

    def test_bad_magic_rejected(self):
        with pytest.raises(MrtError):
            list(read_records(io.BytesIO(b"NOTMAGIC")))

    def test_truncated_stream_rejected(self):
        buffer = io.BytesIO()
        write_records(buffer, [withdraw()])
        data = buffer.getvalue()
        with pytest.raises(MrtError):
            list(read_records(io.BytesIO(data[:-3])))

    def test_empty_archive(self):
        buffer = io.BytesIO()
        write_records(buffer, [])
        buffer.seek(0)
        assert list(read_records(buffer)) == []

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e9),
                st.booleans(),
                prefixes(),
                st.integers(1, 65535),
            ),
            max_size=15,
        )
    )
    def test_roundtrip_property(self, specs):
        records = []
        for time, is_announce, prefix, asn in specs:
            if is_announce:
                records.append(
                    UpdateRecord(
                        time, 1, asn, prefix, UpdateKind.ANNOUNCE,
                        PathAttributes(as_path=AsPath((asn,)), next_hop=1),
                    )
                )
            else:
                records.append(
                    UpdateRecord(time, 1, asn, prefix, UpdateKind.WITHDRAW)
                )
        buffer = io.BytesIO()
        write_records(buffer, records)
        buffer.seek(0)
        back = list(read_records(buffer))
        assert len(back) == len(records)
        for a, b in zip(records, back):
            assert a.prefix == b.prefix
            assert a.kind == b.kind
            assert a.time == pytest.approx(b.time, abs=1e-6)


class TestLogs:
    def test_memory_log(self):
        log = MemoryLog()
        log.append(withdraw(time=2.0))
        log.extend([withdraw(time=1.0)])
        assert len(log) == 2
        assert [r.time for r in log.sorted_by_time()] == [1.0, 2.0]
        log.clear()
        assert len(log) == 0

    def test_file_log_roundtrip(self, tmp_path):
        path = tmp_path / "updates.mrt"
        records = [announce(time=1.0), withdraw(time=2.0)]
        with FileLog(path).writer() as writer:
            writer.extend(records)
            assert writer.count == 2
        assert FileLog(path).read_all() == records

    def test_open_log_factory(self, tmp_path):
        assert isinstance(open_log(), MemoryLog)
        assert isinstance(open_log(tmp_path / "x.mrt"), FileLog)

    def test_counting_log_rows(self):
        log = CountingLog()
        log.extend(
            [
                announce(asn=701, prefix="10.0.0.0/8"),
                withdraw(asn=701, prefix="10.0.0.0/8"),
                withdraw(asn=701, prefix="11.0.0.0/8"),
                withdraw(asn=1239, prefix="11.0.0.0/8"),
            ]
        )
        assert log.row(701) == {"announce": 1, "withdraw": 2, "unique": 2}
        assert log.row(1239) == {"announce": 0, "withdraw": 1, "unique": 1}
        assert log.peer_asns() == [701, 1239]
        assert log.total == 4


class TestDayStore:
    def test_partitions_by_day(self):
        store = DayStore()
        store.extend(
            [
                withdraw(time=10.0),
                withdraw(time=SECONDS_PER_DAY + 5.0),
                announce(time=SECONDS_PER_DAY + 1.0),
            ]
        )
        assert store.days() == [0, 1]
        assert len(store.records_for(0)) == 1
        day1 = store.records_for(1)
        assert [r.time for r in day1] == [SECONDS_PER_DAY + 1.0,
                                          SECONDS_PER_DAY + 5.0]
        assert len(store) == 3

    def test_day_of(self):
        assert day_of(0.0) == 0
        assert day_of(SECONDS_PER_DAY - 0.001) == 0
        assert day_of(SECONDS_PER_DAY) == 1

    def test_coverage_filter(self):
        store = DayStore()
        store.add(withdraw(time=100.0))
        # Lose 40 of 144 bins on day 0 -> coverage ~0.72 < 0.8.
        for b in range(40):
            store.mark_lost(0, b)
        store.add(withdraw(time=SECONDS_PER_DAY + 1))
        assert store.coverage(0) == pytest.approx(1 - 40 / 144)
        assert store.well_covered_days() == [1]

    def test_mark_lost_validates_bin(self):
        store = DayStore()
        with pytest.raises(ValueError):
            store.mark_lost(0, 144)

    def test_iteration_yields_sorted_days(self):
        store = DayStore()
        store.add(withdraw(time=SECONDS_PER_DAY * 3))
        store.add(withdraw(time=0.0))
        assert [day for day, _ in store] == [0, 3]
