"""Tests for the §4.2 mechanism models: IGP oscillation, fault
injectors, self-synchronization, and flap storms."""

import random

import pytest

from repro.collector.log import MemoryLog
from repro.core.classifier import classify
from repro.core.instability import CategoryCounts
from repro.core.taxonomy import UpdateCategory
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.faults import (
    CustomerFlapGenerator,
    MaintenanceWindow,
    MisconfiguredProvider,
    PoissonLinkFlapper,
)
from repro.sim.flapstorm import FlapStormScenario
from repro.sim.igp import IgpBgpRedistribution, IgpTable, RouteSource
from repro.sim.link import Link
from repro.sim.router import CpuModel, Router, connect
from repro.sim.routeserver import RouteServer
from repro.sim.sync import SynchronizationStudy, phase_coherence

P = Prefix.parse


class TestIgpTable:
    def test_native_route_wins_alone(self):
        igp = IgpTable()
        igp.add_native(P("10.0.0.0/8"))
        entry = igp.entry(P("10.0.0.0/8"))
        assert entry.source is RouteSource.NATIVE

    def test_bgp_redistributed_displaces_native(self):
        igp = IgpTable()
        igp.add_native(P("10.0.0.0/8"))
        igp.apply_bgp(P("10.0.0.0/8"), available=True)
        assert igp.is_bgp_derived(P("10.0.0.0/8"))

    def test_bgp_removal_restores_native(self):
        igp = IgpTable()
        igp.add_native(P("10.0.0.0/8"))
        igp.apply_bgp(P("10.0.0.0/8"), available=True)
        igp.apply_bgp(P("10.0.0.0/8"), available=False)
        assert igp.entry(P("10.0.0.0/8")).source is RouteSource.NATIVE

    def test_no_routes_no_entry(self):
        igp = IgpTable()
        igp.apply_bgp(P("10.0.0.0/8"), available=False)
        assert igp.entry(P("10.0.0.0/8")) is None


class TestIgpBgpOscillation:
    def _run(self, filtered, duration=600.0):
        engine = Engine()
        sink = MemoryLog()
        router = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(router, server)
        igp = IgpTable()
        igp.add_native(P("10.1.0.0/16"))
        redist = IgpBgpRedistribution(
            engine, router, igp, igp_period=30.0, filtered=filtered
        )
        redist.start()
        engine.run_until(duration)
        return redist, sink

    def test_misconfigured_oscillates_at_igp_period(self):
        redist, sink = self._run(filtered=False)
        # A full W/A cycle per two IGP ticks over 600s of 30s ticks.
        assert redist.oscillation_count >= 8
        counts = CategoryCounts()
        counts.extend(classify(sink.sorted_by_time()))
        assert counts[UpdateCategory.WADUP] >= 3

    def test_oscillation_interarrivals_are_multiples_of_period(self):
        redist, sink = self._run(filtered=False)
        times = sorted(r.time for r in sink)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps  # something flowed
        for gap in gaps:
            ratio = gap / 30.0
            assert abs(ratio - round(ratio)) < 0.2

    def test_filtered_configuration_stabilizes(self):
        redist, sink = self._run(filtered=True)
        # One announcement settles it: no withdrawals ever.
        counts = CategoryCounts()
        counts.extend(classify(sink.sorted_by_time()))
        assert counts[UpdateCategory.WADUP] == 0
        assert counts[UpdateCategory.WWDUP] == 0
        assert redist.oscillation_count <= 2


class TestFaultInjectors:
    def test_poisson_link_flapper(self):
        engine = Engine()
        link = Link(engine)
        link.attach(1, lambda s, m: None)
        link.attach(2, lambda s, m: None)
        flapper = PoissonLinkFlapper(
            engine, [link], mean_time_to_failure=100.0,
            mean_repair_time=5.0, rng=random.Random(1),
        )
        flapper.start()
        engine.run_until(3600.0)
        assert flapper.flap_count > 10
        assert link.down_count == flapper.flap_count

    def test_flapper_stop(self):
        engine = Engine()
        link = Link(engine)
        link.attach(1, lambda s, m: None)
        link.attach(2, lambda s, m: None)
        flapper = PoissonLinkFlapper(
            engine, [link], mean_time_to_failure=10.0,
            mean_repair_time=1.0, rng=random.Random(1),
        )
        flapper.start()
        engine.run_until(100.0)
        flapper.stop()
        count = flapper.flap_count
        engine.run_until(1000.0)
        assert flapper.flap_count == count

    def test_customer_flap_generator_rate(self):
        engine = Engine()
        router = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        for i in range(10):
            router.originate(Prefix((10 << 24) + i * 65536, 16))
        gen = CustomerFlapGenerator(
            engine, router, base_rate=1 / 60.0, rng=random.Random(2)
        )
        gen.start()
        engine.run_until(3600.0)
        # ~60 expected flaps; allow wide tolerance.
        assert 25 <= gen.flap_count <= 120

    def test_customer_flap_intensity_modulation(self):
        engine = Engine()
        router = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        router.originate(P("10.0.0.0/8"))
        quiet = CustomerFlapGenerator(
            engine, router, base_rate=1 / 60.0,
            intensity=lambda now: 0.0, rng=random.Random(3),
        )
        quiet.start()
        engine.run_until(3600.0)
        assert quiet.flap_count == 0

    def test_maintenance_window_bounces_daily(self):
        engine = Engine()
        a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        b = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
        connect(a, b)
        window = MaintenanceWindow(
            engine, a, time_of_day=10 * 3600.0, sessions_to_bounce=1
        )
        window.start()
        engine.run_until(2.5 * 86400.0)
        # 10am slots on days 0, 1, and 2 all precede t = 2.5 days.
        assert window.bounce_count == 3
        # Session recovered after each bounce.
        assert a.sessions[2].is_established

    def test_misconfigured_provider_emits_wwdups(self):
        engine = Engine()
        sink = MemoryLog()
        bad = Router(
            engine, asn=666, router_id=6, mrai_interval=5.0,
            stateless_bgp=True,
        )
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(bad, server)
        engine.run_until(30.0)
        foreign = [P("192.42.113.0/24"), P("198.51.100.0/24")]
        mis = MisconfiguredProvider(
            engine, bad, foreign, period=30.0, rng=random.Random(4)
        )
        mis.start()
        engine.run_until(330.0)
        counts = CategoryCounts()
        counts.extend(classify(sink.sorted_by_time()))
        # Every emitted withdrawal concerns a never-announced prefix.
        assert counts[UpdateCategory.WWDUP] >= 10
        assert counts.total == counts[UpdateCategory.WWDUP]

    def test_misconfigured_provider_periodicity(self):
        engine = Engine()
        sink = MemoryLog()
        bad = Router(engine, asn=666, router_id=6, mrai_interval=5.0)
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(bad, server)
        engine.run_until(30.0)
        mis = MisconfiguredProvider(
            engine, bad, [P("192.42.113.0/24")], period=30.0
        )
        mis.start()
        engine.run_until(630.0)
        times = sorted(r.time for r in sink)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps and all(abs(g - 30.0) < 1.0 for g in gaps)


class TestSelfSynchronization:
    def test_unjittered_system_synchronizes(self):
        for seed in (3, 7, 11):
            study = SynchronizationStudy(jitter=0.0, seed=seed)
            study.advance(24 * 3600.0)
            assert study.final_coherence() > 0.9, seed

    def test_jittered_system_stays_incoherent(self):
        for seed in (3, 7, 11):
            study = SynchronizationStudy(jitter=0.25, seed=seed)
            study.advance(24 * 3600.0)
            assert study.final_coherence() < 0.8, seed

    def test_coherence_increases_over_time_unjittered(self):
        study = SynchronizationStudy(jitter=0.0, seed=3)
        study.advance(24 * 3600.0)
        series = study.coherence_series(step=1800.0)
        assert series[-1] > series[0]
        assert series[-1] > 0.9

    def test_external_bursts_occur(self):
        study = SynchronizationStudy(jitter=0.0, seed=1)
        study.advance(3600.0)
        assert study.external_events > 0

    def test_phase_coherence_bounds(self):
        assert phase_coherence([], 30.0) == 0.0
        assert phase_coherence([0.0, 30.0, 60.0], 30.0) == pytest.approx(1.0)
        spread = [0.0, 7.5, 15.0, 22.5]
        assert phase_coherence(spread, 30.0) == pytest.approx(0.0, abs=1e-9)


class TestFlapStorm:
    def test_settled_mesh_is_fully_peered(self):
        scenario = FlapStormScenario(n_routers=4, prefixes_per_router=10)
        scenario.settle()
        assert scenario.established_sessions() == 4 * 3  # full mesh, both ends

    STORM_CPU = dict(per_update=0.1, per_sent_update=0.05,
                     per_dump_route=0.05)

    def test_storm_ignites_with_slow_cpu(self):
        scenario = FlapStormScenario(
            n_routers=5,
            prefixes_per_router=40,
            cpu=CpuModel(**self.STORM_CPU),
            hold_time=30.0,
            seed=1,
        )
        result = scenario.storm(flaps=600, over_seconds=20.0)
        # The seed burst cascades into session losses well beyond the
        # victim's own peerings.
        assert result.session_drops >= 10
        assert result.stormed
        assert result.total_updates_sent > 1000
        assert result.drop_times == sorted(result.drop_times)

    def test_fast_cpu_absorbs_same_burst(self):
        scenario = FlapStormScenario(
            n_routers=5,
            prefixes_per_router=40,
            cpu=CpuModel(per_update=0.001, per_sent_update=0.001,
                         per_dump_route=0.001),
            hold_time=30.0,
            seed=1,
        )
        result = scenario.storm(flaps=600, over_seconds=20.0)
        assert result.session_drops == 0

    def test_keepalive_priority_contains_storm(self):
        kwargs = dict(
            n_routers=5,
            prefixes_per_router=40,
            hold_time=30.0,
            seed=1,
        )
        vulnerable = FlapStormScenario(
            cpu=CpuModel(**self.STORM_CPU),
            keepalive_priority=False,
            **kwargs,
        )
        protected = FlapStormScenario(
            cpu=CpuModel(**self.STORM_CPU),
            keepalive_priority=True,
            **kwargs,
        )
        storm = vulnerable.storm(flaps=600, over_seconds=20.0)
        calm = protected.storm(flaps=600, over_seconds=20.0)
        assert storm.session_drops >= 10
        assert calm.session_drops < storm.session_drops / 4
