"""Tests for session-event records and storm forensics."""

import io

import pytest

from repro.analysis.storms import (
    detect_storms,
    flap_rate_series,
    session_loss_bursts,
)
from repro.bgp.wire import WireError
from repro.collector.mrt_rfc import (
    SessionEvent,
    read_state_changes,
    write_state_changes,
)


def loss(time, peer=1, asn=701):
    return SessionEvent(time, peer, asn, "ESTABLISHED", "IDLE")


def up(time, peer=1, asn=701):
    return SessionEvent(time, peer, asn, "OPEN_CONFIRM", "ESTABLISHED")


class TestSessionEvent:
    def test_loss_detection(self):
        assert loss(0.0).is_session_loss
        assert not up(0.0).is_session_loss
        assert up(0.0).is_session_up

    def test_state_change_roundtrip(self):
        events = [loss(100.0, peer=5, asn=701), up(160.0, peer=5, asn=701)]
        buffer = io.BytesIO()
        assert write_state_changes(buffer, events) == 2
        buffer.seek(0)
        back = list(read_state_changes(buffer))
        assert len(back) == 2
        assert back[0].is_session_loss
        assert back[1].is_session_up
        assert back[0].peer_id == 5
        assert back[0].peer_asn == 701

    def test_bad_state_code_rejected(self):
        buffer = io.BytesIO()
        write_state_changes(buffer, [loss(1.0)])
        data = bytearray(buffer.getvalue())
        data[-1] = 99  # new-state code
        with pytest.raises(WireError):
            list(read_state_changes(io.BytesIO(bytes(data))))

    def test_empty_stream(self):
        assert list(read_state_changes(io.BytesIO(b""))) == []


class TestBurstClustering:
    def test_singleton_bounce(self):
        episodes = session_loss_bursts([loss(10.0)])
        assert len(episodes) == 1
        assert episodes[0].losses == 1
        assert episodes[0].duration == 0.0

    def test_gap_splits_bursts(self):
        events = [loss(0.0), loss(50.0), loss(1000.0)]
        episodes = session_loss_bursts(events, quiet_gap=120.0)
        assert len(episodes) == 2
        assert episodes[0].losses == 2
        assert episodes[1].losses == 1

    def test_ups_ignored(self):
        events = [loss(0.0), up(10.0), loss(20.0)]
        episodes = session_loss_bursts(events)
        assert episodes[0].losses == 2

    def test_spread_counts_distinct_peers(self):
        events = [loss(0.0, peer=1), loss(5.0, peer=2), loss(10.0, peer=1)]
        (episode,) = session_loss_bursts(events)
        assert episode.spread == 2


class TestStormDetection:
    def test_requires_losses_and_spread(self):
        one_peer_bounce = [loss(t, peer=1) for t in (0.0, 10.0, 20.0)]
        assert detect_storms(one_peer_bounce) == []  # no spread
        small = [loss(0.0, peer=1), loss(5.0, peer=2)]
        assert detect_storms(small) == []  # too few losses
        storm = [
            loss(0.0, peer=1), loss(5.0, peer=2), loss(10.0, peer=3),
            loss(15.0, peer=1),
        ]
        (episode,) = detect_storms(storm)
        assert episode.losses == 4
        assert episode.spread == 3

    def test_flap_rate_series(self):
        events = [loss(10.0), loss(20.0), loss(70.0)]
        series = flap_rate_series(events, bin_width=60.0)
        assert series[0] == 2
        assert series[1] == 1

    def test_empty_series(self):
        assert flap_rate_series([]) == []


class TestRouteServerSessionLog:
    def test_storm_visible_in_server_log(self):
        """The flap-storm scenario's cascade shows up as a detected
        storm in a route-server-style session log built from the
        routers' FSM histories."""
        from repro.sim.flapstorm import FlapStormScenario
        from repro.sim.router import CpuModel

        scenario = FlapStormScenario(
            n_routers=5, prefixes_per_router=40,
            cpu=CpuModel(per_update=0.1, per_sent_update=0.05,
                         per_dump_route=0.05),
            hold_time=30.0, seed=1,
        )
        result = scenario.storm(flaps=600, over_seconds=20.0)
        events = [
            SessionEvent(t, peer, 0, "ESTABLISHED", "IDLE")
            for peer, t in enumerate(result.drop_times)
        ]
        # Give each loss a distinct peer id surrogate via enumerate —
        # the scenario recorded only times, so spread is synthetic
        # here; the real per-peer version is exercised below.
        storms = detect_storms(events, quiet_gap=120.0)
        assert storms, "the cascade should cluster into a storm"

    def test_route_server_records_transitions(self):
        from repro.collector.log import MemoryLog
        from repro.sim.engine import Engine
        from repro.sim.router import Router, connect
        from repro.sim.routeserver import RouteServer

        engine = Engine()
        provider = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        server = RouteServer(engine, asn=65000, router_id=99,
                             sink=MemoryLog())
        link = connect(provider, server)
        engine.run_until(60.0)
        link.go_down()
        engine.run_until(90.0)
        link.go_up()
        engine.run_until(200.0)
        ups = [e for e in server.session_events if e.is_session_up]
        downs = [e for e in server.session_events if e.is_session_loss]
        assert len(ups) >= 2   # initial + recovery
        assert len(downs) >= 1
        assert all(e.peer_asn == 100 for e in server.session_events)
