"""Edge-case coverage for the fault injectors and the flap-storm
scenario (previously only exercised indirectly).

The cases the issue calls out: faults scheduled at t=0, overlapping
storm bursts, and a storm spanning a day boundary — plus the
determinism guarantees the verify layer depends on (same seed, same
cascade).
"""

import random

import pytest

from repro.collector.store import SECONDS_PER_DAY
from repro.sim.engine import Engine, SimulationError
from repro.sim.faults import (
    CustomerFlapGenerator,
    MaintenanceWindow,
    MisconfiguredProvider,
    PoissonLinkFlapper,
)
from repro.sim.flapstorm import FlapStormScenario
from repro.sim.link import Link


def small_storm(**overrides):
    settings = dict(n_routers=3, prefixes_per_router=4, hold_time=30.0, seed=3)
    settings.update(overrides)
    return FlapStormScenario(**settings)


class TestFaultsAtTimeZero:
    def test_engine_accepts_zero_delay_and_now_schedule(self):
        engine = Engine()
        fired = []
        engine.schedule(0.0, fired.append, "delay-0")
        engine.schedule_at(0.0, fired.append, "at-now")
        engine.run_until(1.0)
        assert fired == ["delay-0", "at-now"]
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, fired.append, "never")

    def test_link_flapper_started_at_t0_flaps_and_repairs(self):
        engine = Engine()
        link = Link(engine, delay=0.01)
        flapper = PoissonLinkFlapper(
            engine,
            [link],
            mean_time_to_failure=1.0,
            mean_repair_time=0.5,
            rng=random.Random(0),
        )
        flapper.start()  # engine.now == 0.0
        engine.run_until(60.0)
        assert flapper.flap_count > 10
        flapper.stop()
        engine.run()
        # After stop, any pending repair still fires but nothing new is
        # scheduled: the link must end repaired.
        assert link.is_up

    def test_maintenance_window_at_midnight_fires_next_midnight(self):
        # time_of_day=0 with the clock already at 0 must schedule the
        # *next* midnight, not an event in the past (or an infinite
        # same-instant loop).  Scheduling never touches the router.
        engine = Engine()
        window = MaintenanceWindow(engine, router=None, time_of_day=0.0)
        window.start()
        assert engine.next_event_time() == SECONDS_PER_DAY

    def test_maintenance_window_later_today_fires_today(self):
        engine = Engine(start_time=3600.0)
        window = MaintenanceWindow(
            engine, router=None, time_of_day=10 * 3600.0
        )
        window.start()
        assert engine.next_event_time() == 10 * 3600.0

    def test_maintenance_window_exactly_at_slot_waits_a_day(self):
        # The clock sitting exactly on the slot is "not after it":
        # today_slot > now is false, so the bounce goes to tomorrow.
        engine = Engine(start_time=10 * 3600.0)
        window = MaintenanceWindow(
            engine, router=None, time_of_day=10 * 3600.0
        )
        window.start()
        assert engine.next_event_time() == SECONDS_PER_DAY + 10 * 3600.0

    def test_misconfigured_provider_with_no_prefixes_is_harmless(self):
        storm = small_storm()
        storm.settle()
        provider = MisconfiguredProvider(
            storm.engine, storm.routers[0], foreign_prefixes=[], period=5.0
        )
        provider.start()
        storm.engine.run_until(storm.engine.now + 30.0)
        assert provider.withdrawals_emitted == 0

    def test_customer_flaps_on_router_without_originations(self):
        storm = small_storm(prefixes_per_router=0)
        storm.settle()
        generator = CustomerFlapGenerator(
            storm.engine,
            storm.routers[0],
            base_rate=1.0,
            rng=random.Random(1),
        )
        generator.start()
        storm.engine.run_until(storm.engine.now + 30.0)
        assert generator.flap_count == 0  # nothing to flap, no crash


class TestOverlappingStorms:
    def test_two_overlapping_bursts_run_and_count_updates(self):
        storm = small_storm()
        storm.settle()
        before = sum(r.updates_sent for r in storm.routers)
        # Two victims flapping over the same window.
        storm.inject_burst(victim_index=0, flaps=20, over_seconds=5.0)
        storm.inject_burst(victim_index=1, flaps=20, over_seconds=5.0)
        storm.engine.run_until(storm.engine.now + 60.0)
        after = sum(r.updates_sent for r in storm.routers)
        assert after > before

    def test_overlapping_bursts_are_deterministic(self):
        def cascade():
            storm = small_storm(seed=9)
            storm.settle()
            storm.inject_burst(victim_index=0, flaps=15, over_seconds=4.0)
            storm.inject_burst(victim_index=2, flaps=15, over_seconds=4.0)
            storm.engine.run_until(storm.engine.now + 60.0)
            return (
                storm.engine.events_processed,
                sum(r.updates_sent for r in storm.routers),
            )

        assert cascade() == cascade()

    def test_storm_same_seed_same_result(self):
        first = small_storm(seed=7).storm(
            flaps=20, over_seconds=5.0, observe_for=60.0
        )
        second = small_storm(seed=7).storm(
            flaps=20, over_seconds=5.0, observe_for=60.0
        )
        assert first.session_drops == second.session_drops
        assert first.total_updates_sent == second.total_updates_sent
        assert first.drop_times == second.drop_times


@pytest.mark.slow
class TestDayBoundary:
    def test_storm_spanning_day_boundary(self):
        # Settle, idle up to just before midnight, then flap across
        # the boundary: the cascade must carry over t=86400 without
        # scheduling errors, and update emission must continue on the
        # far side.
        storm = small_storm(prefixes_per_router=2)
        storm.settle()
        storm.engine.run_until(SECONDS_PER_DAY - 10.0)
        before = sum(r.updates_sent for r in storm.routers)
        storm.inject_burst(victim_index=0, flaps=20, over_seconds=20.0)
        storm.engine.run_until(SECONDS_PER_DAY + 120.0)
        after = sum(r.updates_sent for r in storm.routers)
        assert after > before
        assert storm.engine.now == SECONDS_PER_DAY + 120.0

    def test_maintenance_window_fires_across_day_boundary(self):
        storm = small_storm(prefixes_per_router=2)
        storm.settle()  # now == 120
        window = MaintenanceWindow(
            storm.engine, storm.routers[0],
            time_of_day=200.0, sessions_to_bounce=1,
        )
        window.start()
        storm.engine.run_until(SECONDS_PER_DAY + 300.0)
        # One bounce at t=200 today and one at t=86600 tomorrow; the
        # bounced session must have re-established in between.
        assert window.bounce_count == 2
