"""Vectorized-generation digest parity.

The vectorized WWDup tier (``TraceGenerator._emit_wwdup_columns``)
and the cached-bisect bin sampler must consume every ``random.Random``
draw in exactly the order the original scalar loop did, so three
materializations of any day stay bit-identical forever:

- ``day_records`` (scalar, per-record dataclasses),
- vectorized ``day_columns`` (NumPy slab emission),
- the preserved pre-vectorization tier
  (:mod:`repro.verify.refgen`, the reference oracle the
  generation-throughput bar in ``benchmarks/run_bench.py`` is also
  timed against).

These tests pin that contract across the fuzz-seed corpus, pair
fractions, incident overlays, diurnal schedules, and the shared
``AttributeTable`` campaign mode, freeze the end-to-end campaign
digest so a silent draw-order change fails loudly, and prove the
generator's ``hash()`` uses are PYTHONHASHSEED-free.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import CampaignConfig
from repro.campaign.runner import run_campaign
from repro.core.columns import AttributeTable
from repro.verify.golden import FUZZ_SEEDS
from repro.verify.refgen import ReferenceTraceGenerator, reference_twin
from repro.workloads import (
    DiurnalModel,
    Incident,
    IncidentSchedule,
    TraceGenerator,
)
from repro.workloads.generator import campaign_generator

# Small population: ~13k records/day keeps every parity sweep fast
# while still exercising the WWDup flood path (~95% of records).
FAST = dict(n_peers=8, total_prefixes=240)


def small_generator(seed: int, **overrides) -> TraceGenerator:
    base = campaign_generator(
        population_seed=seed, generator_seed=seed, **FAST
    )
    if not overrides:
        return base
    return TraceGenerator(
        population=base.population, seed=seed, **overrides
    )


def columns_digest(columns) -> str:
    """Content digest of one generated day: record bytes plus the
    interned attribute bundles in id order (ids are part of the
    layout, so interning order differences would show)."""
    digest = hashlib.sha256(columns.data.tobytes())
    names = [str(columns.attrs[i]) for i in range(len(columns.attrs))]
    digest.update(repr(names).encode())
    return digest.hexdigest()


def assert_three_way_parity(make_generator, day: int, pair_fraction: float):
    """day_records == vectorized day_columns == pre-PR reference, as
    records and as column-byte digests."""
    records = make_generator().day_records(day, pair_fraction=pair_fraction)
    columns = make_generator().day_columns(day, pair_fraction=pair_fraction)
    reference = reference_twin(make_generator()).day_columns(
        day, pair_fraction=pair_fraction
    )
    assert columns.to_records() == records
    assert columns_digest(columns) == columns_digest(reference)


class TestDayParity:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fuzz_seeds_three_way(self, seed):
        assert_three_way_parity(
            lambda: small_generator(seed), day=seed, pair_fraction=0.3
        )

    @pytest.mark.parametrize("pair_fraction", (0.05, 0.3, 1.0))
    def test_pair_fractions(self, pair_fraction):
        """Subsampling draws one rng.random() per pair before episode
        synthesis; the vectorized tier must keep that interleaving."""
        assert_three_way_parity(
            lambda: small_generator(7), day=3, pair_fraction=pair_fraction
        )

    def test_incident_overlay(self):
        """Storm + outage overlays change episode counts and zero out
        lost bins — both paths must sample the same masked weights."""
        schedule = (
            IncidentSchedule()
            .add(Incident("storm", first_day=2, last_day=4, magnitude=6.0))
            .add(
                Incident(
                    "upgrade",
                    first_day=3,
                    last_day=3,
                    magnitude=3.0,
                    start_bin=12,
                    end_bin=30,
                )
            )
            .mark_lost_bins(3, range(60, 72))
        )
        for day in (2, 3):
            assert_three_way_parity(
                lambda: small_generator(11, schedule=schedule),
                day=day,
                pair_fraction=0.5,
            )

    def test_diurnal_schedule(self):
        """A non-default diurnal model (strong trend, summer shoulder
        active) reshapes bin weights; parity must be weight-agnostic."""
        diurnal = DiurnalModel(
            trend_per_day=0.02, summer_start_day=0, summer_end_day=400
        )
        assert_three_way_parity(
            lambda: small_generator(13, diurnal=diurnal),
            day=5,
            pair_fraction=0.4,
        )

    def test_shared_attribute_table_campaign_mode(self):
        """Campaign shards intern attributes into one shared table;
        vectorized and reference runs must produce identical ids
        across consecutive days."""
        vec = small_generator(3)
        ref = reference_twin(small_generator(3))
        vec_table, ref_table = AttributeTable(), AttributeTable()
        for day in (0, 1, 2):
            a = vec.day_columns(day, pair_fraction=0.3, attrs=vec_table)
            b = ref.day_columns(day, pair_fraction=0.3, attrs=ref_table)
            assert a.attrs is vec_table and b.attrs is ref_table
            assert columns_digest(a) == columns_digest(b)

    def test_reference_is_forced_scalar(self):
        """The oracle must never silently inherit the vectorized path
        (that would make the differential vacuous)."""
        generator = reference_twin(small_generator(1))
        assert isinstance(generator, ReferenceTraceGenerator)
        assert type(generator)._materialize_day is not (
            TraceGenerator._materialize_day
        )
        assert type(generator)._sample_bin is not TraceGenerator._sample_bin


class TestPinnedCampaignDigest:
    def test_campaign_digest_is_frozen(self):
        """The end-to-end campaign manifest digest over the standard
        small config.  This value predates the vectorized tier: moving
        it means the optimization changed the record stream."""
        config = CampaignConfig(days=3, seed=5, shards=2, **FAST)
        result = run_campaign(config)
        assert result.partial.records == 43294
        assert result.partial.digest() == (
            "2b7296fae84c831cc9cb132daf16e3ec"
            "3427c970d6e66d7f70e2fc89843bf7de"
        )


class TestHashSeedFreedom:
    def test_prefix_hash_is_value_based_across_hash_seeds(self):
        """``_attrs`` derives origin ASNs from ``hash(pair)`` where
        pair is (Prefix, int) and Prefix is an int tuple — int tuple
        hashes are value-based, not PYTHONHASHSEED-salted.  Prove it
        by hashing the same pairs under two different hash seeds in
        subprocesses."""
        src = Path(__file__).resolve().parent.parent / "src"
        script = (
            "from repro.net.prefix import Prefix\n"
            "pairs = [(Prefix.parse('192.42.113.0/24'), 3561),\n"
            "         (Prefix.parse('10.0.0.0/8'), 701)]\n"
            "print([hash(p) for p in pairs])\n"
        )
        outputs = []
        for hash_seed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = str(src)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]

    def test_day_digest_is_stable_across_hash_seeds(self):
        """End to end: the same day digested under two hash seeds."""
        src = Path(__file__).resolve().parent.parent / "src"
        script = (
            "import hashlib\n"
            "from repro.workloads.generator import campaign_generator\n"
            "g = campaign_generator(n_peers=8, total_prefixes=240,\n"
            "                       population_seed=3)\n"
            "c = g.day_columns(1, pair_fraction=0.3)\n"
            "d = hashlib.sha256(c.data.tobytes())\n"
            "names = [str(c.attrs[i]) for i in range(len(c.attrs))]\n"
            "d.update(repr(names).encode())\n"
            "print(d.hexdigest())\n"
        )
        digests = []
        for hash_seed in ("7", "90210"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = str(src)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1] and len(digests[0]) == 64
