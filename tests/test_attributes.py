"""Unit and property tests for repro.bgp.attributes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, Origin, PathAttributes


asns = st.integers(min_value=1, max_value=65535)
as_paths = st.builds(AsPath, st.lists(asns, max_size=8))


class TestAsPath:
    def test_origin_and_neighbor(self):
        path = AsPath((701, 1239, 3561))
        assert path.origin_as == 3561
        assert path.neighbor_as == 701

    def test_empty_path(self):
        path = AsPath()
        assert path.origin_as is None
        assert path.neighbor_as is None
        assert path.hop_count == 0

    def test_prepend(self):
        path = AsPath((1239,)).prepend(701)
        assert tuple(path) == (701, 1239)

    def test_prepend_multiple(self):
        path = AsPath((1239,)).prepend(701, 3)
        assert tuple(path) == (701, 701, 701, 1239)
        assert path.unique_ases == {701, 1239}

    def test_prepend_zero_rejected(self):
        with pytest.raises(ValueError):
            AsPath((1,)).prepend(2, 0)

    def test_loop_detection(self):
        path = AsPath((701, 1239))
        assert path.contains_loop(1239)
        assert not path.contains_loop(3561)

    def test_invalid_asn_rejected(self):
        with pytest.raises(ValueError):
            AsPath((0,))
        with pytest.raises(ValueError):
            AsPath((70000,))

    def test_parse_roundtrip(self):
        assert AsPath.parse("701 1239 3561") == AsPath((701, 1239, 3561))
        assert AsPath.parse("") == AsPath()
        assert AsPath.parse(str(AsPath((7, 8)))) == AsPath((7, 8))

    def test_hashable_tuple_compatible(self):
        assert hash(AsPath((1, 2))) == hash((1, 2))
        assert AsPath((1, 2)) == (1, 2)

    @given(as_paths, asns)
    def test_prepend_property(self, path, asn):
        new = path.prepend(asn)
        assert new.neighbor_as == asn
        assert new.hop_count == path.hop_count + 1
        assert new.contains_loop(asn)
        if path:
            assert new.origin_as == path.origin_as


class TestPathAttributes:
    def test_defaults(self):
        attrs = PathAttributes()
        assert attrs.as_path == AsPath()
        assert attrs.next_hop == 0
        assert attrs.origin is Origin.IGP
        assert attrs.med is None

    def test_coerces_plain_tuples(self):
        attrs = PathAttributes(as_path=(701, 1239), communities=[1, 2])
        assert isinstance(attrs.as_path, AsPath)
        assert isinstance(attrs.communities, frozenset)

    def test_forwarding_key_ignores_policy_attrs(self):
        base = PathAttributes(as_path=AsPath((701,)), next_hop=0x0A000001)
        policy_changed = PathAttributes(
            as_path=AsPath((701,)),
            next_hop=0x0A000001,
            med=50,
            communities=frozenset({0xFFFF0001}),
        )
        assert base.same_forwarding(policy_changed)

    def test_forwarding_key_detects_path_change(self):
        a = PathAttributes(as_path=AsPath((701,)), next_hop=1)
        b = PathAttributes(as_path=AsPath((1239,)), next_hop=1)
        c = PathAttributes(as_path=AsPath((701,)), next_hop=2)
        assert not a.same_forwarding(b)
        assert not a.same_forwarding(c)

    def test_exported_by_transform(self):
        attrs = PathAttributes(
            as_path=AsPath((1239,)), next_hop=5, local_pref=200
        )
        out = attrs.exported_by(701, next_hop=9)
        assert out.as_path == AsPath((701, 1239))
        assert out.next_hop == 9
        assert out.local_pref is None  # stripped at eBGP export

    def test_exported_by_with_prepending(self):
        out = PathAttributes(as_path=AsPath((1,))).exported_by(
            7, next_hop=0, prepend=3
        )
        assert tuple(out.as_path) == (7, 7, 7, 1)

    def test_with_communities_accumulates(self):
        attrs = PathAttributes().with_communities(1).with_communities(2, 3)
        assert attrs.communities == frozenset({1, 2, 3})

    def test_frozen(self):
        attrs = PathAttributes()
        with pytest.raises(AttributeError):
            attrs.next_hop = 5

    def test_hashable(self):
        a = PathAttributes(as_path=AsPath((1,)), next_hop=2)
        b = PathAttributes(as_path=AsPath((1,)), next_hop=2)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_describe_mentions_fields(self):
        attrs = PathAttributes(
            as_path=AsPath((701,)), next_hop=1, med=10, local_pref=90,
            communities=frozenset({0xFF}),
        )
        text = attrs.describe()
        assert "701" in text and "med=10" in text and "localpref=90" in text

    @given(as_paths, st.integers(min_value=0, max_value=2**32 - 1))
    def test_same_forwarding_reflexive(self, path, next_hop):
        attrs = PathAttributes(as_path=path, next_hop=next_hop)
        assert attrs.same_forwarding(attrs)
