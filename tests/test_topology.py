"""Tests for topology generation, exchange points, and multi-homing."""

import pytest

from repro.net.aggregation import aggregation_ratio
from repro.topology.asgraph import Tier, build_internet_graph
from repro.topology.exchange import (
    EXCHANGE_POINTS,
    ExchangePoint,
    exchange_by_name,
)
from repro.topology.internet import CoreInternetScenario, ProviderSpec
from repro.topology.multihoming import MultihomingGrowthModel
from repro.sim.engine import Engine
from repro.sim.router import Router


class TestExchangeInfo:
    def test_five_measured_exchanges(self):
        assert len(EXCHANGE_POINTS) == 5
        names = {e.name for e in EXCHANGE_POINTS}
        assert names == {"Mae-East", "AADS", "Sprint", "PacBell", "Mae-West"}

    def test_mae_east_is_largest(self):
        mae_east = exchange_by_name("mae-east")
        assert mae_east.largest
        assert mae_east.route_server_peers == max(
            e.route_server_peers for e in EXCHANGE_POINTS
        )

    def test_unknown_exchange_raises(self):
        with pytest.raises(KeyError):
            exchange_by_name("LINX")


class TestAsGraph:
    def test_tier_counts(self):
        g = build_internet_graph(
            n_backbones=6, n_regionals=10, n_customers=50, seed=2
        )
        assert len(g.backbones) == 6
        assert len(g.regionals) == 10
        assert len(g.customers) == 50
        assert len(g) == 66

    def test_backbones_fully_meshed(self):
        g = build_internet_graph(n_backbones=5, seed=2)
        backbone_asns = {b.asn for b in g.backbones}
        for a in sorted(backbone_asns):
            neighbors = set(g.graph.neighbors(a))
            assert backbone_asns - {a} <= neighbors

    def test_deterministic_for_seed(self):
        a = build_internet_graph(seed=5)
        b = build_internet_graph(seed=5)
        assert sorted(map(str, a.all_prefixes())) == sorted(
            map(str, b.all_prefixes())
        )

    def test_multi_homed_fraction_near_target(self):
        g = build_internet_graph(
            n_customers=400, multi_homed_fraction=0.25, seed=3
        )
        assert 0.18 <= g.multi_homed_fraction() <= 0.32

    def test_customers_have_providers(self):
        g = build_internet_graph(seed=4)
        for customer in g.customers:
            providers = g.providers_of(customer.asn)
            assert len(providers) == (2 if customer.multi_homed else 1)

    def test_prefixes_unique_across_ases(self):
        g = build_internet_graph(seed=6)
        prefixes = g.all_prefixes()
        assert len(prefixes) == len(set(prefixes))

    def test_backbone_aggregates_are_blocks(self):
        g = build_internet_graph(seed=7)
        for backbone in g.backbones:
            assert backbone.plan.aggregates
            assert all(p.length <= 10 for p in backbone.plan.aggregates)

    def test_swamp_customers_aggregate_poorly(self):
        g = build_internet_graph(
            n_customers=200, legacy_fraction=1.0,
            multi_homed_fraction=0.0, seed=8,
        )
        specifics = [
            p for c in g.customers for p in c.plan.specifics
        ]
        assert specifics
        assert aggregation_ratio(specifics) > 0.9


class TestExchangePoint:
    def test_full_mesh_session_count(self):
        engine = Engine()
        xp = ExchangePoint(engine, full_mesh=True)
        for i in range(4):
            xp.attach_provider(
                Router(engine, asn=100 + i, router_id=i + 1), start=False
            )
        # 4 server sessions + C(4,2)=6 bilateral.
        assert xp.session_count == 10

    def test_route_server_only_is_linear(self):
        engine = Engine()
        xp = ExchangePoint(engine, full_mesh=False)
        for i in range(10):
            xp.attach_provider(
                Router(engine, asn=100 + i, router_id=i + 1), start=False
            )
        assert xp.session_count == 10

    def test_sessions_establish(self):
        engine = Engine()
        xp = ExchangePoint(engine, full_mesh=True)
        for i in range(3):
            xp.attach_provider(
                Router(engine, asn=100 + i, router_id=i + 1, mrai_interval=5.0)
            )
        engine.run_until(60.0)
        assert xp.established_sessions() == xp.session_count


class TestMultihomingModel:
    def test_linear_growth(self):
        model = MultihomingGrowthModel(noise=0.0, seed=1)
        series = model.series(n_days=270)
        rate = series.growth_per_day()
        # Recovered slope should approximate the configured one (the
        # upgrade spike biases it slightly upward).
        assert 40.0 <= rate <= 80.0

    def test_gap_days_are_none(self):
        model = MultihomingGrowthModel(gap=(100, 110), seed=1)
        series = model.series(n_days=270)
        assert all(series.counts[d] is None for d in range(100, 111))
        assert series.counts[99] is not None

    def test_upgrade_spike_visible(self):
        model = MultihomingGrowthModel(
            noise=0.0, upgrade_day=55, upgrade_duration=4,
            upgrade_magnitude=2.6, seed=1,
        )
        normal = model.count_on(54)
        spiked = model.count_on(56)
        assert spiked > 2 * normal

    def test_fraction_over_quarter(self):
        """The paper: more than 25% of prefixes are multi-homed."""
        model = MultihomingGrowthModel(seed=1)
        # Mid-campaign (paper wrote this in early 1997, after the data).
        frac = model.multi_homed_fraction(200)
        assert frac > 0.25

    def test_deterministic(self):
        a = MultihomingGrowthModel(seed=9).series(50).counts
        b = MultihomingGrowthModel(seed=9).series(50).counts
        assert a == b


class TestCoreInternetScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.topology.asgraph import build_internet_graph

        graph = build_internet_graph(
            n_backbones=3, n_regionals=4, n_customers=20, seed=11
        )
        scenario = CoreInternetScenario(graph=graph, mrai_interval=5.0, seed=11)
        scenario.settle(120.0)
        return scenario

    def test_all_sessions_come_up(self, scenario):
        assert (
            scenario.exchange.established_sessions()
            == scenario.exchange.session_count
        )

    def test_route_server_sees_full_table(self, scenario):
        expected = len(set(scenario.graph.all_prefixes()))
        assert scenario.table_size() == expected

    def test_settle_clears_convergence_noise(self, scenario):
        assert len(scenario.sink) == 0

    def test_flaps_reach_the_route_server(self, scenario):
        provider = next(iter(scenario.routers.values()))
        prefix = provider.originated[0]
        provider.flap_origin(prefix, down_for=6.0)
        scenario.run(60.0)
        assert len(scenario.sink) >= 2  # withdrawal + re-announcement
