"""Unit tests for the naive reference oracle (repro.verify.reference).

The oracle is the ground truth the optimized tiers are held to, so it
gets its own direct tests against hand-worked examples from the
paper's §4.1 definitions — every category, the policy-fluctuation
flag, the Figure 8 bin edges, and the aggregations.
"""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.collector.record import UpdateKind, UpdateRecord
from repro.net.prefix import Prefix
from repro.verify.reference import (
    FIGURE8_EDGES,
    reference_bin_counts,
    reference_classify,
    reference_counts,
    reference_counts_by_peer,
    reference_counts_by_prefix,
    reference_digest,
    reference_interarrival_histogram,
)

PEER = 0xC0000001
ASN = 65001
PREFIX = Prefix(10 << 24, 24)
OTHER_PREFIX = Prefix((10 << 24) + 256, 24)

ATTRS = PathAttributes(as_path=AsPath((ASN, 3000)), next_hop=PEER)
ATTRS_MED = PathAttributes(
    as_path=AsPath((ASN, 3000)), next_hop=PEER, med=20
)
ATTRS_ALT = PathAttributes(
    as_path=AsPath((ASN, 5000, 3000)), next_hop=PEER
)


def announce(time, attrs=ATTRS, prefix=PREFIX, peer=PEER, asn=ASN):
    return UpdateRecord(time, peer, asn, prefix, UpdateKind.ANNOUNCE, attrs)


def withdraw(time, prefix=PREFIX, peer=PEER, asn=ASN):
    return UpdateRecord(time, peer, asn, prefix, UpdateKind.WITHDRAW)


class TestTaxonomy:
    def test_first_announcement_is_new(self):
        assert reference_classify([announce(0.0)]) == [
            ("NEW_ANNOUNCE", False)
        ]

    def test_exact_duplicate_is_aadup_without_policy(self):
        labels = reference_classify([announce(0.0), announce(30.0)])
        assert labels[1] == ("AADUP", False)

    def test_policy_only_change_is_aadup_with_policy(self):
        labels = reference_classify(
            [announce(0.0), announce(30.0, ATTRS_MED)]
        )
        assert labels[1] == ("AADUP", True)

    def test_forwarding_change_is_aadiff(self):
        labels = reference_classify(
            [announce(0.0), announce(30.0, ATTRS_ALT)]
        )
        assert labels[1] == ("AADIFF", False)

    def test_reannounce_same_is_wadup(self):
        labels = reference_classify(
            [announce(0.0), withdraw(10.0), announce(30.0)]
        )
        assert labels == [
            ("NEW_ANNOUNCE", False),
            ("PLAIN_WITHDRAW", False),
            ("WADUP", False),
        ]

    def test_reannounce_policy_change_is_still_wadup(self):
        # WADup/WADiff discriminate on the forwarding tuple only; a
        # MED change across a withdrawal is still WADup.
        labels = reference_classify(
            [announce(0.0), withdraw(10.0), announce(30.0, ATTRS_MED)]
        )
        assert labels[2] == ("WADUP", False)

    def test_reannounce_different_is_wadiff(self):
        labels = reference_classify(
            [announce(0.0), withdraw(10.0), announce(30.0, ATTRS_ALT)]
        )
        assert labels[2] == ("WADIFF", False)

    def test_withdraw_unreachable_is_wwdup(self):
        labels = reference_classify(
            [withdraw(0.0), withdraw(10.0), announce(20.0), withdraw(30.0),
             withdraw(40.0)]
        )
        assert [name for name, _ in labels] == [
            "WWDUP", "WWDUP", "NEW_ANNOUNCE", "PLAIN_WITHDRAW", "WWDUP"
        ]

    def test_state_is_per_peer_and_prefix(self):
        # The same prefix from two peers, and two prefixes from one
        # peer, are independent streams.
        labels = reference_classify(
            [
                announce(0.0),
                announce(1.0, prefix=OTHER_PREFIX),
                announce(2.0, peer=PEER + 1, asn=ASN + 1),
                announce(3.0),
            ]
        )
        assert [name for name, _ in labels] == [
            "NEW_ANNOUNCE", "NEW_ANNOUNCE", "NEW_ANNOUNCE", "AADUP"
        ]


class TestAggregations:
    def test_counts_shape(self):
        counts = reference_counts(
            [announce(0.0), announce(30.0, ATTRS_MED), withdraw(60.0)]
        )
        assert counts == {
            "AADUP": 1,
            "NEW_ANNOUNCE": 1,
            "PLAIN_WITHDRAW": 1,
            "policy_changes": 1,
        }

    def test_counts_by_peer_keys_on_asn(self):
        by_peer = reference_counts_by_peer(
            [announce(0.0), announce(1.0, peer=PEER + 1, asn=ASN + 1)]
        )
        assert set(by_peer) == {ASN, ASN + 1}
        assert by_peer[ASN]["NEW_ANNOUNCE"] == 1

    def test_counts_by_prefix(self):
        by_prefix = reference_counts_by_prefix(
            [announce(0.0), withdraw(1.0), announce(2.0, prefix=OTHER_PREFIX)]
        )
        assert by_prefix == {
            f"{PREFIX.network}/24": 2,
            f"{OTHER_PREFIX.network}/24": 1,
        }

    def test_bin_counts(self):
        counts = reference_bin_counts(
            [announce(0.0), announce(30.0, ATTRS_MED), withdraw(650.0)],
            bin_width=600.0,
        )
        assert counts == [2, 1, 0]

    def test_interarrival_edges_are_inclusive_upper(self):
        # A 30s gap lands in the 30s bin, not the 1m bin.
        histogram = reference_interarrival_histogram(
            [announce(0.0), announce(30.0, ATTRS_MED)]
        )
        assert histogram[FIGURE8_EDGES.index(30.0)] == 1
        assert sum(histogram) == 1

    def test_interarrival_drops_gaps_over_24h(self):
        histogram = reference_interarrival_histogram(
            [announce(0.0), announce(90000.0, ATTRS_MED)]
        )
        assert sum(histogram) == 0

    def test_interarrival_category_filter(self):
        records = [announce(0.0), withdraw(10.0), withdraw(20.0),
                   withdraw(30.0)]
        wwdup_only = reference_interarrival_histogram(records, "WWDUP")
        # Only the 20s→30s gap is between two WWDups.
        assert sum(wwdup_only) == 1

    def test_digest_is_order_sensitive(self):
        a = [announce(0.0), withdraw(10.0)]
        b = [withdraw(0.0), announce(10.0)]
        assert reference_digest(a) != reference_digest(b)
        assert reference_digest(a) == reference_digest(list(a))


def test_figure8_edges_match_analysis_layer():
    from repro.analysis.interarrival import FIGURE8_BINS

    assert tuple(FIGURE8_BINS) == FIGURE8_EDGES
