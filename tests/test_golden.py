"""The golden corpus (tests/golden/ + repro.verify.golden).

The committed corpus must keep verifying against the working tree, and
regeneration must be byte-stable — two consecutive ``--write`` runs
produce identical bytes, so an unchanged tree regenerates to a no-op
diff and any semantic change shows up as a reviewable corpus diff.
"""

import io
import json
from pathlib import Path

import pytest

from repro.collector import mrt
from repro.verify.golden import (
    CASES_FILE,
    TRACE_FILE,
    build_golden,
    check_golden,
    main,
    write_golden,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def test_committed_corpus_verifies():
    problems = check_golden(GOLDEN_DIR)
    assert problems == []


def test_regeneration_is_byte_stable(tmp_path):
    first = tmp_path / "first"
    second = tmp_path / "second"
    write_golden(first)
    write_golden(second)
    for name in (CASES_FILE, TRACE_FILE):
        assert (first / name).read_bytes() == (second / name).read_bytes()


def test_regenerating_committed_corpus_is_a_noop(tmp_path):
    regenerated = tmp_path / "golden"
    write_golden(regenerated)
    for name in (CASES_FILE, TRACE_FILE):
        assert (
            (regenerated / name).read_bytes()
            == (GOLDEN_DIR / name).read_bytes()
        ), f"{name}: committed corpus is stale (run --write and commit)"


def test_committed_trace_decodes_to_frozen_classification():
    cases = json.loads((GOLDEN_DIR / CASES_FILE).read_text())
    trace = (GOLDEN_DIR / TRACE_FILE).read_bytes()
    decoded = list(mrt.read_records(io.BytesIO(trace)))
    assert len(decoded) == cases["trace"]["records"]


def test_check_flags_a_doctored_corpus(tmp_path):
    write_golden(tmp_path)
    cases_path = tmp_path / CASES_FILE
    cases = json.loads(cases_path.read_text())
    cases["campaign"]["digest"] = "0" * 64
    cases_path.write_text(json.dumps(cases, indent=2, sort_keys=True))
    problems = check_golden(tmp_path)
    assert any("campaign" in problem for problem in problems)


def test_check_flags_a_corrupted_trace(tmp_path):
    write_golden(tmp_path)
    trace_path = tmp_path / TRACE_FILE
    trace_path.write_bytes(trace_path.read_bytes()[:-4])
    problems = check_golden(tmp_path)
    assert any(TRACE_FILE in problem for problem in problems)


def test_check_reports_missing_corpus(tmp_path):
    problems = check_golden(tmp_path / "nowhere")
    assert problems and "--write" in problems[0]


def test_cli_check_and_write(tmp_path, capsys):
    assert main(["--write", "--dir", str(tmp_path)]) == 0
    assert main(["--check", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "golden corpus OK" in out


def test_build_golden_covers_all_sections():
    payload, trace = build_golden()
    assert set(payload) == {
        "schema", "streams", "detection", "scenarios", "trace",
        "campaign", "figures",
    }
    assert len(payload["streams"]) == 9  # 5 fuzz seeds + 4 adversarial
    # detection adds the 4 detection-tier generators to those 9
    assert len(payload["detection"]) == 13
    assert len(payload["scenarios"]) == 5  # one per attack kind
    assert trace.startswith(mrt.MAGIC)


def test_check_flags_a_doctored_detection_case(tmp_path):
    write_golden(tmp_path)
    cases_path = tmp_path / CASES_FILE
    cases = json.loads(cases_path.read_text())
    cases["detection"][0]["digest"] = "f" * 64
    cases_path.write_text(json.dumps(cases, indent=2, sort_keys=True))
    problems = check_golden(tmp_path)
    assert any("detection" in problem for problem in problems)


def test_check_flags_a_doctored_scenario_case(tmp_path):
    write_golden(tmp_path)
    cases_path = tmp_path / CASES_FILE
    cases = json.loads(cases_path.read_text())
    cases["scenarios"][0]["detection_counts"]["moas_conflict"] = 10**6
    cases_path.write_text(json.dumps(cases, indent=2, sort_keys=True))
    problems = check_golden(tmp_path)
    assert any("scenario" in problem for problem in problems)


def test_scenario_cases_cover_every_attack_kind():
    from repro.sim.adversary import ATTACK_KINDS

    cases = json.loads((GOLDEN_DIR / CASES_FILE).read_text())
    frozen = {case["scenario"] for case in cases["scenarios"]}
    assert frozen == set(ATTACK_KINDS)
    # every attack's signature flag is non-zero in its frozen counts
    signatures = {
        "hijack_moas": "moas_conflict",
        "hijack_subprefix": "subprefix_foreign",
        "route_leak": "valley_violation",
        "path_forgery": "forged_edge",
        "deagg_storm": "subprefix_deagg",
    }
    for case in cases["scenarios"]:
        flag = signatures[case["scenario"]]
        assert case["detection_counts"][flag] > 0, case["scenario"]
