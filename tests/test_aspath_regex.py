"""Tests for the AS-path regular expression engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.aspath_regex import AsPathRegexError, compile_regex
from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.policy import MatchCondition
from repro.net.prefix import Prefix


class TestBasicMatching:
    def test_literal_asn_unanchored(self):
        regex = compile_regex("1239")
        assert regex.search((701, 1239, 3561))
        assert not regex.search((701, 3561))

    def test_boundary_form(self):
        regex = compile_regex("_701_")
        assert regex.search((701,))
        assert regex.search((7018, 701, 1239))
        assert not regex.search((7018, 1239))

    def test_anchored_start(self):
        regex = compile_regex("^701")
        assert regex.search((701, 1239))
        assert not regex.search((1239, 701))

    def test_anchored_end(self):
        regex = compile_regex("3561$")
        assert regex.search((701, 3561))
        assert not regex.search((3561, 701))

    def test_fully_anchored(self):
        regex = compile_regex("^701 1239$")
        assert regex.search((701, 1239))
        assert not regex.search((701, 1239, 3561))
        assert not regex.search((7, 701, 1239))

    def test_dot_any(self):
        regex = compile_regex("^701 . 3561$")
        assert regex.search((701, 99, 3561))
        assert not regex.search((701, 3561))

    def test_empty_pattern_matches_everything(self):
        regex = compile_regex("")
        assert regex.search(())
        assert regex.search((1, 2, 3))


class TestQuantifiers:
    def test_star(self):
        regex = compile_regex("^701 1239* 3561$")
        assert regex.search((701, 3561))
        assert regex.search((701, 1239, 3561))
        assert regex.search((701, 1239, 1239, 1239, 3561))
        assert not regex.search((701, 7, 3561))

    def test_plus(self):
        regex = compile_regex("^701+$")
        assert regex.search((701,))
        assert regex.search((701, 701, 701))
        assert not regex.search(())

    def test_question(self):
        regex = compile_regex("^701 1239? 3561$")
        assert regex.search((701, 3561))
        assert regex.search((701, 1239, 3561))
        assert not regex.search((701, 1239, 1239, 3561))

    def test_dot_star_prefix(self):
        """The classic ^.* 3561$ — 'whatever, originated by 3561'."""
        regex = compile_regex("^.* 3561$")
        assert regex.search((3561,))
        assert regex.search((1, 2, 3, 3561))
        assert not regex.search((3561, 1))

    def test_prepending_detector(self):
        """Detect ASPATH prepending: the same AS twice in a row."""
        regex = compile_regex("701 701")
        assert regex.search((701, 701, 1239))
        assert not regex.search((701, 1239, 701))


class TestSetsAndAlternation:
    def test_as_set(self):
        regex = compile_regex("^[701 1239 3561]$")
        for asn in (701, 1239, 3561):
            assert regex.search((asn,))
        assert not regex.search((7018,))

    def test_alternation(self):
        regex = compile_regex("^(701 1239|3561)$")
        assert regex.search((701, 1239))
        assert regex.search((3561,))
        assert not regex.search((701,))

    def test_group_with_quantifier(self):
        regex = compile_regex("^(701 1239)+$")
        assert regex.search((701, 1239))
        assert regex.search((701, 1239, 701, 1239))
        assert not regex.search((701, 1239, 701))

    def test_match_full_ignores_anchor_state(self):
        regex = compile_regex("701")
        assert regex.match_full((701,))
        assert not regex.match_full((701, 1239))


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["(701", "[701", "[]", "[x]", "701)", "70a1", "&"],
    )
    def test_malformed_patterns(self, bad):
        with pytest.raises(AsPathRegexError):
            compile_regex(bad)


class TestPolicyIntegration:
    def test_match_condition_uses_regex(self):
        condition = MatchCondition(as_path_regex="^701 .* 3561$")
        prefix = Prefix.parse("10.0.0.0/8")
        yes = PathAttributes(as_path=AsPath((701, 9, 3561)))
        no = PathAttributes(as_path=AsPath((1239, 3561)))
        assert condition.matches(prefix, yes)
        assert not condition.matches(prefix, no)

    def test_regex_composes_with_other_conditions(self):
        condition = MatchCondition(
            prefixes=(Prefix.parse("10.0.0.0/8"),),
            as_path_regex="_1239_",
        )
        inside = Prefix.parse("10.1.0.0/16")
        outside = Prefix.parse("11.0.0.0/8")
        attrs = PathAttributes(as_path=AsPath((701, 1239)))
        assert condition.matches(inside, attrs)
        assert not condition.matches(outside, attrs)


# -- property-based: engine never explodes, semantics sane -------------------

paths = st.lists(st.integers(1, 65535), max_size=12).map(tuple)


@settings(max_examples=80)
@given(paths, st.integers(1, 65535))
def test_literal_search_equals_membership(path, asn):
    assert compile_regex(str(asn)).search(path) == (asn in path)


@settings(max_examples=60)
@given(paths)
def test_dot_star_matches_everything(path):
    assert compile_regex(".*").search(path)
    assert compile_regex("^.*$").search(path)


@settings(max_examples=60)
@given(paths)
def test_anchored_any_plus(path):
    # ^.+$ matches exactly the non-empty paths.
    assert compile_regex("^.+$").search(path) == (len(path) > 0)


@settings(max_examples=40)
@given(st.lists(st.integers(1, 100), min_size=1, max_size=6).map(tuple))
def test_exact_path_pattern_matches_itself(path):
    pattern = "^" + " ".join(str(a) for a in path) + "$"
    regex = compile_regex(pattern)
    assert regex.search(path)
    assert not regex.search(path + (99999,))
