"""The differential conformance harness (repro.verify.differential).

Two kinds of test: the real tiers must agree with the reference oracle
over large seeded fuzz campaigns (including the adversarial hard-case
generators), and deliberately broken tiers must be *caught* — with the
failure minimized by ddmin shrink into a counterexample small enough
to read (the acceptance bar is ≤ 10 records).
"""

import os
from pathlib import Path

import pytest

from repro.core.columns import (
    AttributeTable,
    CATEGORY_OF_CODE,
    ColumnClassifier,
    RecordColumns,
)
from repro.verify.differential import (
    columnar_labels,
    run_differential,
    shrink_stream,
    stream_digest,
    streaming_labels,
)
from repro.verify.reference import reference_classify
from repro.verify.streams import (
    ADVERSARIAL_GENERATORS,
    FuzzStream,
    fuzz_stream,
)


def assert_ok(report):
    """Assert a differential report is clean; on failure, write each
    (shrunk) counterexample to $DIFFERENTIAL_ARTIFACT_DIR so CI can
    upload them as artifacts."""
    if report.ok:
        return
    artifact_dir = os.environ.get("DIFFERENTIAL_ARTIFACT_DIR")
    if artifact_dir:
        directory = Path(artifact_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for index, mismatch in enumerate(report.mismatches):
            path = directory / (
                f"counterexample-{mismatch.stream_name}-{index:03d}.txt"
            )
            path.write_text(mismatch.describe() + "\n")
    raise AssertionError(
        "\n".join(m.describe() for m in report.mismatches)
    )


def make_streams(n_fuzz, adversarial_seeds):
    streams = [fuzz_stream(seed) for seed in range(n_fuzz)]
    for name in sorted(ADVERSARIAL_GENERATORS):
        streams.extend(
            ADVERSARIAL_GENERATORS[name](seed)
            for seed in range(adversarial_seeds)
        )
    return streams


class TestRealTiersAgree:
    def test_quick_campaign(self):
        # The always-on smoke slice of the fuzz lane.
        report = run_differential(make_streams(40, 5))
        assert_ok(report)
        assert report.streams == 60
        assert report.records > 4000

    @pytest.mark.fuzz
    def test_thousand_stream_campaign(self):
        # The acceptance bar: >= 1000 seeded streams, adversarial
        # generators included, all three tiers bit-identical.
        report = run_differential(make_streams(840, 40), shrink=False)
        assert report.streams == 1000
        assert_ok(report)

    def test_state_digests_agree_across_tiers(self):
        stream = fuzz_stream(123)
        _, stream_state = streaming_labels(stream.records)
        _, column_state = columnar_labels(
            stream.records, stream.boundaries
        )
        assert stream_state == column_state

    def test_digest_matches_reference(self):
        stream = fuzz_stream(7)
        labels, _ = streaming_labels(stream.records)
        expected = reference_classify(stream.records)
        assert labels == expected
        assert stream_digest(stream.records, labels) == stream_digest(
            stream.records, expected
        )


def broken_forwarding_tier(records):
    """A streaming tier with a deliberate off-by-one: the forwarding
    comparison slices one element instead of two, so it compares next
    hops only and ignores ASPATH changes."""
    reachable, ever, last = {}, {}, {}
    labels = []
    for r in records:
        key = (r.peer_id, r.prefix.network, r.prefix.length)
        if r.is_announce:
            a = r.attributes
            current = (a.next_hop, tuple(a.as_path), a.med, a.local_pref,
                       tuple(sorted(a.communities)))
            if not ever.get(key):
                labels.append(("NEW_ANNOUNCE", False))
            else:
                previous = last[key]
                same_fwd = current[0:1] == previous[0:1]  # the bug
                if reachable.get(key):
                    if same_fwd:
                        labels.append(("AADUP", current != previous))
                    else:
                        labels.append(("AADIFF", False))
                else:
                    labels.append(
                        ("WADUP" if same_fwd else "WADIFF", False)
                    )
            reachable[key] = True
            ever[key] = True
            last[key] = current
        else:
            labels.append(
                ("PLAIN_WITHDRAW", False)
                if reachable.get(key)
                else ("WWDUP", False)
            )
            reachable[key] = False
    return labels, None


def broken_carry_tier(records, boundaries=()):
    """A columnar tier that forgets cross-batch state: every batch is
    classified by a fresh classifier."""
    cuts = sorted({b for b in boundaries if 0 < b < len(records)})
    edges = [0, *cuts, len(records)]
    table = AttributeTable()
    labels = []
    classifier = None
    for lo, hi in zip(edges, edges[1:]):
        classifier = ColumnClassifier()  # the bug: state reset per batch
        batch = RecordColumns.from_records(records[lo:hi], attrs=table)
        codes, policy = classifier.classify(batch)
        labels.extend(
            (CATEGORY_OF_CODE[int(code)].name, bool(flag))
            for code, flag in zip(codes, policy)
        )
    return labels, classifier.state_digest() if classifier else None


class TestBrokenTiersAreCaught:
    def test_off_by_one_caught_with_tiny_counterexample(self):
        report = run_differential(
            make_streams(20, 3), stream_tier=broken_forwarding_tier
        )
        assert not report.ok
        found = report.mismatches[0]
        assert found.shrunk is not None
        assert len(found.shrunk) <= 10  # acceptance bar
        # The shrunk stream still distinguishes the bug on its own.
        broken, _ = broken_forwarding_tier(found.shrunk)
        assert broken != reference_classify(found.shrunk)
        assert "shrunk counterexample" in found.describe()

    def test_missing_carry_caught_with_tiny_counterexample(self):
        streams = [
            ADVERSARIAL_GENERATORS["cross_batch_carry"](seed)
            for seed in range(3)
        ]
        report = run_differential(streams, column_tier=broken_carry_tier)
        assert not report.ok
        found = report.mismatches[0]
        assert found.tier.startswith("columnar")
        assert found.shrunk is not None
        assert len(found.shrunk) <= 10

    def test_clean_tiers_produce_no_mismatch_on_same_streams(self):
        # The same streams that catch the bugs pass with the real tiers
        # (the harness is sensitive, not trigger-happy).
        report = run_differential(make_streams(20, 3))
        assert report.ok


class TestShrink:
    def test_shrink_is_deterministic_and_minimal(self):
        stream = fuzz_stream(5)

        def failing(subset):
            # Fails iff the subset announces prefix 10.0.0.0/24 at
            # least twice from peer 0 (a stand-in property with a known
            # 2-record minimum).
            hits = [
                r for r in subset
                if r.is_announce and r.prefix.network == (10 << 24)
            ]
            return len(hits) >= 2

        assert failing(stream.records)
        first = shrink_stream(stream.records, failing)
        second = shrink_stream(stream.records, failing)
        assert first == second
        assert len(first) == 2
        assert failing(first)

    def test_shrink_keeps_failure_failing(self):
        stream = fuzz_stream(11)

        def failing(subset):
            return sum(1 for r in subset if r.is_withdraw) >= 3

        shrunk = shrink_stream(stream.records, failing)
        assert failing(shrunk)
        assert len(shrunk) == 3


def test_report_summary_counts():
    report = run_differential([fuzz_stream(1), fuzz_stream(2)])
    assert report.streams == 2
    assert "2 streams" in report.summary()
    assert report.summary().endswith("OK")


# -- the detection differential ---------------------------------------------


def make_detection_streams(n_fuzz, adversarial_seeds):
    """Fuzz + adversarial + detection-tier generators: every stream the
    detection differential is held to."""
    from repro.verify.streams import DETECTION_GENERATORS

    streams = make_streams(n_fuzz, adversarial_seeds)
    for name in sorted(DETECTION_GENERATORS):
        streams.extend(
            DETECTION_GENERATORS[name](seed)
            for seed in range(adversarial_seeds)
        )
    return streams


class TestDetectionTiersAgree:
    def test_quick_campaign(self):
        from repro.verify.differential import run_detection_differential
        from repro.verify.streams import detection_topology

        report = run_detection_differential(
            make_detection_streams(20, 3), detection_topology()
        )
        assert_ok(report)
        assert report.streams == 44
        assert report.records > 2000

    @pytest.mark.fuzz
    def test_large_campaign(self):
        from repro.verify.differential import run_detection_differential
        from repro.verify.streams import detection_topology

        report = run_detection_differential(
            make_detection_streams(200, 25),
            detection_topology(),
            shrink=False,
        )
        assert report.streams == 400
        assert_ok(report)

    def test_topology_free_detection_also_agrees(self):
        from repro.verify.differential import run_detection_differential

        # With no declared topology the path flags are all zero but the
        # MOAS / origin / sub-prefix machinery still must agree.
        report = run_detection_differential(
            make_detection_streams(10, 2), topology=None
        )
        assert_ok(report)

    def test_detection_generators_exercise_every_flag(self):
        from repro.verify.reference import (
            DETECTION_FLAGS,
            reference_detection_counts,
        )
        from repro.verify.streams import detection_topology

        edges = detection_topology().edges()
        totals = {name: 0 for _, name in DETECTION_FLAGS}
        for stream in make_detection_streams(5, 2):
            for name, count in reference_detection_counts(
                stream.records, edges
            ).items():
                totals[name] += count
        assert all(count > 0 for count in totals.values()), totals


def broken_moas_tier(records, topology=None):
    """A streaming detection tier that forgets to retire a peer's old
    origin on re-announcement — origins accumulate and MOAS over-fires."""
    from repro.analysis.detection import StreamDetector
    from repro.core.classifier import StreamClassifier

    detector = StreamDetector(topology)
    classifier = StreamClassifier()
    flags = []
    for record in records:
        category = classifier.feed(record).category
        if record.is_announce:
            key = (record.peer_id, record.prefix.network,
                   record.prefix.length)
            detector._route_origin.pop(key, None)  # the bug
        flags.append(detector.feed(record, category))
    return flags, None


class TestBrokenDetectionTiersAreCaught:
    def test_leaky_multiset_caught_and_shrunk(self):
        from repro.verify.differential import run_detection_differential
        from repro.verify.streams import detection_topology

        report = run_detection_differential(
            make_detection_streams(10, 2),
            detection_topology(),
            stream_tier=broken_moas_tier,
        )
        assert not report.ok
        found = report.mismatches[0]
        assert found.tier == "det-streaming"
        assert found.shrunk is not None
        assert len(found.shrunk) <= 10  # same acceptance bar

    def test_clean_tiers_pass_the_same_streams(self):
        from repro.verify.differential import run_detection_differential
        from repro.verify.streams import detection_topology

        report = run_detection_differential(
            make_detection_streams(10, 2), detection_topology()
        )
        assert report.ok
