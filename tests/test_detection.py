"""The adversarial detection tier (repro.analysis.detection).

Unit tests for each flag's semantics, the valley-free path machine,
the sub-prefix foreign/deaggregation split, the stability counters and
scores, and the bit-identity of the streaming and columnar detectors —
including cross-batch carry and property-style seeded checks (valley-
free paths are never flagged; MOAS detection is injection-order
independent).
"""

import random

import pytest

from repro.analysis.detection import (
    FLAGS,
    FORGED_EDGE,
    MOAS_CONFLICT,
    ORIGIN_CHANGE,
    SUBPREFIX_DEAGG,
    SUBPREFIX_FOREIGN,
    VALLEY_VIOLATION,
    AsRelationships,
    ColumnDetector,
    StreamDetector,
    detect_records,
    detect_records_columnar,
    detection_digest,
    flag_names,
    path_flags,
    stability_scores,
)
from repro.bgp.attributes import AsPath, PathAttributes
from repro.collector.record import UpdateKind, UpdateRecord
from repro.net.prefix import Prefix
from repro.verify.reference import reference_detect

PEER_A = (0xC0000001, 64)
PEER_B = (0xC0000002, 65)
PEER_C = (0xC0000003, 66)

P24 = Prefix(10 << 24, 24)
P26 = Prefix(10 << 24, 26)
P16 = Prefix(10 << 24, 16)


def ann(time, peer, prefix, path):
    peer_id, peer_asn = peer
    return UpdateRecord(
        time, peer_id, peer_asn, prefix, UpdateKind.ANNOUNCE,
        PathAttributes(as_path=AsPath(tuple(path)), next_hop=peer_id),
    )


def wd(time, peer, prefix):
    peer_id, peer_asn = peer
    return UpdateRecord(
        time, peer_id, peer_asn, prefix, UpdateKind.WITHDRAW
    )


def feed_all(records, topology=None):
    """Flags from the streaming tier (the unit under test here)."""
    return detect_records(records, topology).flags


def topology():
    """transit 900 serves customers 10 and 20; 10 serves 1, 20 serves
    2; 10 peers with 11."""
    rel = AsRelationships()
    rel.add_provider(900, 10)
    rel.add_provider(900, 20)
    rel.add_provider(10, 1)
    rel.add_provider(20, 2)
    rel.add_peer(10, 11)
    return rel


class TestFlags:
    def test_canonical_order_and_names(self):
        assert [bit for bit, _ in FLAGS] == [1, 2, 4, 8, 16, 32]
        assert flag_names(0) == ()
        assert flag_names(MOAS_CONFLICT | FORGED_EDGE) == (
            "moas_conflict", "forged_edge",
        )

    def test_relationships_hops(self):
        rel = topology()
        assert rel.hop(1, 10) == "up"
        assert rel.hop(10, 1) == "down"
        assert rel.hop(10, 11) == "peer" == rel.hop(11, 10)
        assert rel.hop(1, 2) is None
        assert len(rel) == 10
        assert rel.edges()[(1, 10)] == "up"


class TestPathFlags:
    def test_customer_chain_is_clean(self):
        # origin 1 exports up to 10, 10 exports to the observer (peer).
        assert path_flags((10, 1), topology()) == 0

    def test_prepending_is_collapsed(self):
        assert path_flags((10, 10, 1, 1, 1), topology()) == 0

    def test_provider_learned_route_is_a_leak(self):
        # 10 learned 2's route via its provider 900, exported it to us.
        assert path_flags((10, 900, 20, 2), topology()) == VALLEY_VIOLATION

    def test_peer_learned_route_is_a_leak(self):
        # 10 learned the route from its peer 11 and exported to us.
        assert path_flags((10, 11), topology()) == VALLEY_VIOLATION

    def test_undeclared_adjacency_is_forged(self):
        assert path_flags((10, 999), topology()) == FORGED_EDGE

    def test_forged_paths_are_not_valley_checked(self):
        # (10, 900, 999): the 999 edge is undeclared — forged wins even
        # though 900 -> 10 alone would read as a valley.
        assert path_flags((10, 900, 999), topology()) == FORGED_EDGE

    def test_short_or_untopologied_paths_are_clean(self):
        assert path_flags((10,), topology()) == 0
        assert path_flags((), topology()) == 0
        assert path_flags((10, 999), None) == 0


class TestMoasAndOriginChange:
    def test_second_origin_trips_moas(self):
        flags = feed_all([
            ann(0.0, PEER_A, P24, (64, 7)),
            ann(1.0, PEER_B, P24, (65, 8)),
        ])
        assert flags[0] == 0
        assert flags[1] & MOAS_CONFLICT

    def test_same_origin_from_two_peers_is_not_moas(self):
        flags = feed_all([
            ann(0.0, PEER_A, P24, (64, 7)),
            ann(1.0, PEER_B, P24, (65, 7)),
        ])
        assert flags == [0, 0]

    def test_withdrawal_retires_the_conflicting_origin(self):
        flags = feed_all([
            ann(0.0, PEER_A, P24, (64, 7)),
            wd(1.0, PEER_A, P24),
            ann(2.0, PEER_B, P24, (65, 8)),
        ])
        # origin 7 is gone by the time 8 announces: no concurrency...
        assert not flags[2] & MOAS_CONFLICT
        # ...but the origin still changed relative to history.
        assert flags[2] & ORIGIN_CHANGE

    def test_origin_change_persists_across_withdrawal(self):
        flags = feed_all([
            ann(0.0, PEER_A, P24, (64, 7)),
            wd(1.0, PEER_A, P24),
            ann(2.0, PEER_A, P24, (64, 7)),
            ann(3.0, PEER_A, P24, (64, 9)),
        ])
        assert flags[2] == 0  # same origin re-announced: quiet
        assert flags[3] & ORIGIN_CHANGE

    def test_empty_path_origin_falls_back_to_peer_asn(self):
        flags = feed_all([
            ann(0.0, PEER_A, P24, ()),
            ann(1.0, PEER_B, P24, ()),
        ])
        # origins are the two peer ASNs (64 vs 65): a real conflict.
        assert flags[1] & MOAS_CONFLICT

    def test_moas_prefix_set_is_cumulative(self):
        result = detect_records([
            ann(0.0, PEER_A, P24, (64, 7)),
            ann(1.0, PEER_B, P24, (65, 8)),
            wd(2.0, PEER_B, P24),
        ])
        assert result.detector.moas_prefixes == {
            (P24.network, P24.length)
        }


class TestSubprefix:
    def test_foreign_subprefix(self):
        flags = feed_all([
            ann(0.0, PEER_A, P24, (64, 7)),
            ann(1.0, PEER_B, P26, (65, 8)),
        ])
        assert flags[1] & SUBPREFIX_FOREIGN
        assert not flags[1] & SUBPREFIX_DEAGG

    def test_deaggregation_by_the_covering_origin(self):
        flags = feed_all([
            ann(0.0, PEER_A, P24, (64, 7)),
            ann(1.0, PEER_A, P26, (64, 7)),
        ])
        assert flags[1] & SUBPREFIX_DEAGG
        assert not flags[1] & SUBPREFIX_FOREIGN

    def test_longest_cover_wins(self):
        # /16 announced by origin 7, /24 by origin 8; a /26 from origin
        # 8 is judged against the /24 (deagg), not the /16 (foreign).
        flags = feed_all([
            ann(0.0, PEER_A, P16, (64, 7)),
            ann(1.0, PEER_B, P24, (65, 8)),
            ann(2.0, PEER_C, P26, (66, 8)),
        ])
        assert flags[2] & SUBPREFIX_DEAGG
        assert not flags[2] & SUBPREFIX_FOREIGN

    def test_withdrawn_cover_stops_flagging(self):
        flags = feed_all([
            ann(0.0, PEER_A, P24, (64, 7)),
            wd(1.0, PEER_A, P24),
            ann(2.0, PEER_B, P26, (65, 8)),
        ])
        assert flags[2] == 0


class TestStability:
    def test_counters_and_scores(self):
        records = [
            ann(0.0, PEER_A, P24, (64, 7)),    # NEW_ANNOUNCE
            ann(1.0, PEER_A, P24, (64, 7)),    # AADUP (pathological)
            wd(2.0, PEER_A, P24),              # PLAIN_WITHDRAW
            ann(3.0, PEER_A, P24, (64, 9)),    # WADIFF (instability)
        ]
        result = detect_records(records)
        stability = result.detector.stability()
        p = (P24.network, P24.length)
        assert stability[p] == (4, 1, 1)
        scores = stability_scores(stability)
        assert scores[p] == pytest.approx(1.0 - 2 / 4)

    def test_untouched_prefix_scores_one(self):
        result = detect_records([ann(0.0, PEER_A, P24, (64, 7))])
        scores = stability_scores(result.detector.stability())
        assert scores[(P24.network, P24.length)] == 1.0


class TestTierEquivalence:
    def records(self):
        rel_records = [
            ann(0.0, PEER_A, P16, (10, 1)),
            ann(1.0, PEER_B, P24, (10, 900, 20, 2)),   # leak
            ann(2.0, PEER_C, P26, (10, 999)),          # forged
            wd(3.0, PEER_A, P16),
            ann(4.0, PEER_A, P24, (20, 2)),            # MOAS vs leak
            ann(5.0, PEER_A, P24, (10, 1)),
        ]
        return rel_records

    def test_stream_equals_columnar_with_batch_cuts(self):
        records = self.records()
        topo = topology()
        streamed = detect_records(records, topo)
        for boundaries in ((), (1,), (3,), (1, 2, 3, 4, 5)):
            columnar = detect_records_columnar(records, topo, boundaries)
            assert columnar.flags == streamed.flags, boundaries
            assert (
                columnar.detector.state_digest()
                == streamed.detector.state_digest()
            )
            assert columnar.counts == streamed.counts

    def test_both_tiers_match_the_reference_oracle(self):
        records = self.records()
        topo = topology()
        expected = reference_detect(records, topo.edges())
        assert detect_records(records, topo).flags == expected
        assert (
            detect_records_columnar(records, topo, (2,)).flags == expected
        )

    def test_detection_digest_requires_alignment(self):
        records = self.records()
        with pytest.raises(ValueError):
            detection_digest(records, [0])

    def test_column_detector_attr_cache_survives_table_growth(self):
        # Same detector, two batches, second batch interns new paths.
        topo = topology()
        records = self.records()
        streamed = detect_records(records, topo)
        columnar = detect_records_columnar(records, topo, (2, 4))
        assert columnar.flags == streamed.flags

    def test_all_withdraw_first_batch(self):
        # First batch carries no announcements, so the attribute table
        # is still empty when the columnar detector sees it.
        records = [
            wd(0.0, PEER_A, P24),
            wd(0.5, PEER_B, P24),
            ann(1.0, PEER_A, P24, (64, 7)),
        ]
        streamed = detect_records(records)
        columnar = detect_records_columnar(records, None, (2,))
        assert columnar.flags == streamed.flags
        assert (
            columnar.detector.state_digest()
            == streamed.detector.state_digest()
        )

    def test_empty_stream(self):
        assert detect_records([]).flags == []
        assert detect_records_columnar([]).flags == []
        detector = ColumnDetector()
        assert (
            detector.state_digest() == StreamDetector().state_digest()
        )


class TestProperties:
    def test_valley_free_paths_are_never_flagged(self):
        # Seeded random provider hierarchies; every strictly-ascending
        # customer chain is valley-free and must stay unflagged by both
        # the detector and the oracle.
        for seed in range(20):
            rng = random.Random(seed)
            rel = AsRelationships()
            # a random forest: ASN i's provider is some smaller ASN
            parents = {}
            for asn in range(2, 40):
                parent = rng.randrange(1, asn)
                parents[asn] = parent
                rel.add_provider(parent, asn)
            for _ in range(30):
                origin = rng.randrange(2, 40)
                chain = [origin]
                while chain[-1] in parents and rng.random() < 0.8:
                    chain.append(parents[chain[-1]])
                path = tuple(reversed(chain))  # sender-first
                assert path_flags(path, rel) == 0, (seed, path)
                record = ann(0.0, PEER_A, P24, path)
                assert reference_detect([record], rel.edges()) == [0]

    def test_moas_detection_is_injection_order_independent(self):
        # The same (peer -> origin) assignments in any arrival order
        # yield the same cumulative MOAS prefix set and the same
        # per-prefix event totals.
        peers = [((0xC0000000 + i), 100 + i) for i in range(6)]
        base = [
            ann(float(i), peer, P24, (peer[1], 7 if i % 2 else 8))
            for i, peer in enumerate(peers)
        ]
        baseline = detect_records(base).detector
        for seed in range(10):
            rng = random.Random(seed)
            shuffled = base[:]
            rng.shuffle(shuffled)
            shuffled = [
                UpdateRecord(
                    float(i), r.peer_id, r.peer_asn, r.prefix, r.kind,
                    r.attributes,
                )
                for i, r in enumerate(shuffled)
            ]
            detector = detect_records(shuffled).detector
            assert detector.moas_prefixes == baseline.moas_prefixes
            assert (
                detector.stability() == baseline.stability()
            )

    def test_leak_classifier_never_flags_declared_customer_routes(self):
        # Every path built purely from add_provider(parent, child)
        # climbs; appending the observer's peer hop keeps it legal.
        rel = topology()
        for path in ((10, 1), (20, 2), (900, 10, 1), (900, 20, 2)):
            assert path_flags(path, rel) == 0, path
