"""Tests for convergence measurement and the forwarding workload."""

import random

import pytest

from repro.analysis.convergence import (
    ConvergenceProbe,
    ConvergenceReport,
    settle_time,
)
from repro.collector.log import MemoryLog
from repro.collector.record import UpdateKind, UpdateRecord
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.router import CpuModel, RouteCache, Router, connect
from repro.sim.routeserver import RouteServer
from repro.sim.trafficgen import ForwardingWorkload, TrafficStats

P = Prefix.parse


def W(time, prefix="10.0.0.0/8"):
    return UpdateRecord(time, 1, 701, P(prefix), UpdateKind.WITHDRAW)


class TestSettleTime:
    def test_last_update_in_horizon(self):
        records = [W(100.0), W(130.0), W(160.0), W(2000.0)]
        assert settle_time(records, P("10.0.0.0/8"), 90.0, horizon=600.0) == 70.0

    def test_none_when_no_updates(self):
        assert settle_time([], P("10.0.0.0/8"), 0.0) is None
        assert settle_time([W(100.0)], P("11.0.0.0/8"), 0.0) is None

    def test_updates_before_event_ignored(self):
        records = [W(50.0), W(120.0)]
        assert settle_time(records, P("10.0.0.0/8"), 100.0) == 20.0

    def test_report_statistics(self):
        report = ConvergenceReport(times=[10.0, 20.0, 30.0])
        assert report.mean == pytest.approx(20.0)
        assert report.worst == 30.0
        assert report.count == 3
        empty = ConvergenceReport(times=[])
        assert empty.mean == 0.0 and empty.worst == 0.0


class TestConvergenceProbe:
    def test_end_to_end_measurement(self):
        engine = Engine()
        sink = MemoryLog()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(origin, server)
        prefix = P("192.0.2.0/24")
        origin.originate(prefix)
        engine.run_until(60.0)
        sink.clear()
        probe = ConvergenceProbe(engine, sink, settle_horizon=120.0)
        probe.flap(origin, prefix, down_for=10.0)
        engine.run_until(engine.now + 200.0)
        report = probe.report()
        assert report.count == 1
        # The W and the re-A both land within a couple of MRAI rounds.
        assert 0.0 < report.worst < 60.0


class TestTrafficStats:
    def test_rates(self):
        stats = TrafficStats(
            sent=100, delivered_fast=80, delivered_slow=10,
            dropped_no_route=5, dropped_overload=5,
        )
        assert stats.delivered == 90
        assert stats.loss_rate == pytest.approx(0.1)
        assert stats.miss_rate == pytest.approx(15 / 95)

    def test_zero_division_safety(self):
        stats = TrafficStats()
        assert stats.loss_rate == 0.0
        assert stats.miss_rate == 0.0


class TestForwardingWorkload:
    def _setup(self, cache=None, cpu=None):
        engine = Engine()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        forwarding = Router(
            engine, asn=200, router_id=2, mrai_interval=2.0,
            cache=cache, cpu=cpu,
        )
        connect(origin, forwarding)
        prefixes = [Prefix((50 << 24) + i * 256, 24) for i in range(20)]
        for prefix in prefixes:
            origin.originate(prefix)
        engine.run_until(60.0)
        return engine, origin, forwarding, prefixes

    def test_requires_destinations(self):
        engine = Engine()
        router = Router(engine, asn=1, router_id=1)
        with pytest.raises(ValueError):
            ForwardingWorkload(engine, router, [])

    def test_delivery_with_cache_warms_up(self):
        engine, origin, forwarding, prefixes = self._setup(
            cache=RouteCache(capacity=100)
        )
        workload = ForwardingWorkload(
            engine, forwarding, prefixes, rate=50.0,
            rng=random.Random(1),
        )
        workload.start()
        engine.run_until(engine.now + 120.0)
        stats = workload.stats
        assert stats.sent > 1000
        assert stats.loss_rate == 0.0
        # After warm-up, hits dominate: at most one compulsory miss
        # per destination.
        assert stats.delivered_slow <= len(prefixes)
        assert stats.delivered_fast > stats.delivered_slow

    def test_withdrawn_destination_drops(self):
        engine, origin, forwarding, prefixes = self._setup()
        workload = ForwardingWorkload(
            engine, forwarding, [prefixes[0]], rate=20.0,
            rng=random.Random(2),
        )
        origin.withdraw_origin(prefixes[0])
        engine.run_until(engine.now + 30.0)  # withdrawal propagates
        workload.start()
        engine.run_until(engine.now + 30.0)
        assert workload.stats.dropped_no_route == workload.stats.sent

    def test_cache_invalidation_causes_miss(self):
        cache = RouteCache(capacity=100)
        engine, origin, forwarding, prefixes = self._setup(cache=cache)
        workload = ForwardingWorkload(
            engine, forwarding, [prefixes[0]], rate=20.0,
            rng=random.Random(3),
        )
        workload.start()
        engine.run_until(engine.now + 30.0)
        misses_before = workload.stats.delivered_slow
        origin.flap_origin(prefixes[0], down_for=5.0)
        engine.run_until(engine.now + 60.0)
        assert cache.invalidations >= 1
        assert workload.stats.delivered_slow > misses_before

    def test_overloaded_cpu_drops_packets(self):
        cpu = CpuModel(per_update=0.5)
        engine, origin, forwarding, prefixes = self._setup(
            cache=RouteCache(capacity=1), cpu=cpu,
        )
        # Saturate the CPU with updates, then send packets that need
        # the slow path.  Outages must outlast the origin's MRAI (2s)
        # or the flap nets out inside the batching window.
        for i in range(60):
            engine.schedule(
                (i % 10) * 3.0,
                origin.flap_origin,
                prefixes[i % len(prefixes)],
                5.0,
            )
        workload = ForwardingWorkload(
            engine, forwarding, prefixes, rate=100.0,
            drop_backlog=0.2, rng=random.Random(4),
        )
        workload.start()
        engine.run_until(engine.now + 60.0)
        assert workload.stats.dropped_overload > 0

    def test_stop_halts_traffic(self):
        engine, origin, forwarding, prefixes = self._setup()
        workload = ForwardingWorkload(
            engine, forwarding, prefixes, rate=50.0,
            rng=random.Random(5),
        )
        workload.start()
        engine.run_until(engine.now + 10.0)
        workload.stop()
        sent = workload.stats.sent
        engine.run_until(engine.now + 60.0)
        assert workload.stats.sent == sent
