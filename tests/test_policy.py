"""Unit tests for routing policy machinery."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.policy import (
    Action,
    DENY_ALL,
    MatchCondition,
    PERMIT_ALL,
    PolicyTerm,
    PrefixLengthFilter,
    RouteMap,
)
from repro.net.prefix import Prefix

P = Prefix.parse


def attrs(path=(701,), **kwargs):
    return PathAttributes(as_path=AsPath(path), **kwargs)


class TestMatchCondition:
    def test_empty_matches_everything(self):
        cond = MatchCondition()
        assert cond.matches(P("10.0.0.0/8"), attrs())

    def test_prefix_list_with_ranges(self):
        cond = MatchCondition(prefixes=(P("10.0.0.0/8"),), ge=16, le=24)
        assert cond.matches(P("10.1.0.0/16"), attrs())
        assert cond.matches(P("10.1.2.0/24"), attrs())
        assert not cond.matches(P("10.0.0.0/8"), attrs())      # too short
        assert not cond.matches(P("10.1.2.0/25"), attrs())     # too long
        assert not cond.matches(P("11.0.0.0/16"), attrs())     # outside

    def test_as_on_path(self):
        cond = MatchCondition(as_on_path=1239)
        assert cond.matches(P("10.0.0.0/8"), attrs((701, 1239)))
        assert not cond.matches(P("10.0.0.0/8"), attrs((701,)))

    def test_origin_as(self):
        cond = MatchCondition(origin_as=3561)
        assert cond.matches(P("10.0.0.0/8"), attrs((701, 3561)))
        assert not cond.matches(P("10.0.0.0/8"), attrs((3561, 701)))

    def test_community(self):
        cond = MatchCondition(community=0xFF)
        assert cond.matches(
            P("10.0.0.0/8"), attrs(communities=frozenset({0xFF}))
        )
        assert not cond.matches(P("10.0.0.0/8"), attrs())

    def test_conjunction_of_conditions(self):
        cond = MatchCondition(prefixes=(P("10.0.0.0/8"),), origin_as=9)
        assert cond.matches(P("10.1.0.0/16"), attrs((7, 9)))
        assert not cond.matches(P("10.1.0.0/16"), attrs((7, 8)))


class TestAction:
    def test_set_attributes(self):
        action = Action(set_local_pref=200, set_med=5)
        out = action.apply(attrs())
        assert out.local_pref == 200
        assert out.med == 5

    def test_add_communities(self):
        out = Action(add_communities=(1, 2)).apply(
            attrs(communities=frozenset({3}))
        )
        assert out.communities == frozenset({1, 2, 3})

    def test_strip_then_add(self):
        out = Action(strip_communities=True, add_communities=(9,)).apply(
            attrs(communities=frozenset({1, 2}))
        )
        assert out.communities == frozenset({9})

    def test_prepend(self):
        out = Action(prepend=2, prepend_asn=7).apply(attrs((1,)))
        assert tuple(out.as_path) == (7, 7, 1)

    def test_noop_returns_equal(self):
        a = attrs()
        assert Action().apply(a) == a


class TestRouteMap:
    def test_first_match_wins(self):
        rm = RouteMap(
            [
                PolicyTerm(
                    MatchCondition(prefixes=(P("10.0.0.0/8"),)),
                    permit=False,
                ),
                PolicyTerm(),  # permit rest
            ]
        )
        assert rm.evaluate(P("10.1.0.0/16"), attrs()) is None
        assert rm.evaluate(P("11.0.0.0/8"), attrs()) is not None

    def test_no_match_denies(self):
        rm = RouteMap(
            [PolicyTerm(MatchCondition(prefixes=(P("10.0.0.0/8"),)))]
        )
        assert rm.evaluate(P("11.0.0.0/8"), attrs()) is None

    def test_permit_applies_action(self):
        rm = RouteMap([PolicyTerm(action=Action(set_local_pref=77))])
        out = rm.evaluate(P("10.0.0.0/8"), attrs())
        assert out.local_pref == 77

    def test_evaluation_counter(self):
        rm = RouteMap([PolicyTerm(permit=False), PolicyTerm()])
        # First term matches everything (deny), so 1 evaluation per call.
        rm.evaluate(P("10.0.0.0/8"), attrs())
        assert rm.evaluations == 1

    def test_permit_all_and_deny_all(self):
        assert PERMIT_ALL.evaluate(P("10.0.0.0/8"), attrs()) is not None
        assert DENY_ALL.evaluate(P("10.0.0.0/8"), attrs()) is None


class TestPrefixLengthFilter:
    def test_drops_long_prefixes(self):
        f = PrefixLengthFilter(max_length=24)
        assert f.allows(P("10.0.0.0/24"))
        assert not f.allows(P("10.0.0.0/25"))
        assert f.dropped == 1 and f.passed == 1

    def test_filter_list(self):
        f = PrefixLengthFilter(max_length=19)
        kept = f.filter([P("10.0.0.0/16"), P("10.0.0.0/20"), P("10.1.0.0/19")])
        assert kept == [P("10.0.0.0/16"), P("10.1.0.0/19")]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            PrefixLengthFilter(max_length=40)
