"""Tests for the figure-level analyses: interarrival (Fig 8), density
(Fig 3), contribution (Fig 6), distribution (Fig 7), affected (Fig 9),
multihoming (Fig 10)."""

import numpy as np
import pytest

from repro.analysis.affected import (
    affected_from_updates,
    affected_series_stats,
)
from repro.analysis.contribution import (
    consistent_dominators,
    contribution_points,
    correlation,
)
from repro.analysis.density import (
    DensityCell,
    build_density_matrix,
)
from repro.analysis.distribution import (
    daily_cdf,
    dominated_days,
    mass_below,
    monthly_cdfs,
)
from repro.analysis.interarrival import (
    FIGURE8_BINS,
    bin_label,
    daily_boxes,
    histogram_proportions,
    interarrival_times,
    timer_bin_mass,
)
from repro.analysis.multihoming import (
    count_multihomed,
    multihomed_by_origin,
    series_summary,
)
from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.rib import LocRib
from repro.core.classifier import classify
from repro.core.taxonomy import UpdateCategory
from repro.collector.record import UpdateKind, UpdateRecord
from repro.net.prefix import Prefix
from repro.topology.multihoming import MultihomingGrowthModel

P = Prefix.parse
ATTRS = PathAttributes(as_path=AsPath((701,)), next_hop=1)


def A(time, prefix="10.0.0.0/8", asn=701, peer=1):
    return UpdateRecord(time, peer, asn, P(prefix), UpdateKind.ANNOUNCE, ATTRS)


def W(time, prefix="10.0.0.0/8", asn=701, peer=1):
    return UpdateRecord(time, peer, asn, P(prefix), UpdateKind.WITHDRAW)


def classified(records):
    return list(classify(sorted(records, key=lambda r: r.time)))


class TestInterarrival:
    def test_bins_cover_paper_labels(self):
        assert len(FIGURE8_BINS) == 12
        assert bin_label(2) == "30s"
        assert bin_label(11) == "24h"

    def test_gaps_computed_per_pair(self):
        updates = classified(
            [A(0), A(30), A(60), A(0, prefix="11.0.0.0/8"),
             A(45, prefix="11.0.0.0/8")]
        )
        gaps = sorted(interarrival_times(updates))
        assert gaps == [30.0, 30.0, 45.0]

    def test_category_filter(self):
        updates = classified([A(0), A(30), W(60), W(90), W(120)])
        wwdup_gaps = interarrival_times(updates, UpdateCategory.WWDUP)
        assert wwdup_gaps == [30.0]  # gaps among the two WWDUPs only

    def test_histogram_proportions(self):
        proportions = histogram_proportions([30.0, 30.0, 59.0, 3000.0])
        assert proportions[2] == pytest.approx(0.5)   # 30s bin
        assert proportions[3] == pytest.approx(0.25)  # 1m bin
        assert sum(proportions) == pytest.approx(1.0)

    def test_timer_bin_mass(self):
        proportions = histogram_proportions([30.0, 55.0, 7200.0, 3.0])
        assert timer_bin_mass(proportions) == pytest.approx(0.5)

    def test_gaps_beyond_24h_dropped(self):
        assert histogram_proportions([100000.0]) == [0.0] * 12

    def test_daily_boxes_median_and_quartiles(self):
        days = []
        for day in range(4):
            base = day * 86400.0
            # Each day: three AADups 30s apart.
            days.append(classified([A(base), A(base + 30), A(base + 60)]))
        boxes = daily_boxes(days, UpdateCategory.AADUP)
        bin_30s = boxes[2]
        assert bin_30s.median == pytest.approx(1.0)
        assert bin_30s.q1 <= bin_30s.median <= bin_30s.q3


class TestDensity:
    def _synthetic_days(self, n_days=28):
        """Counts with diurnal structure: busy afternoons, quiet nights,
        quiet weekends (days 5,6 mod 7)."""
        day_bins = {}
        for day in range(n_days):
            weekend = day % 7 >= 5
            bins = []
            for b in range(144):
                hour = b / 6.0
                level = 30 if hour < 6 else (400 if 12 <= hour else 150)
                if weekend:
                    level //= 4
                bins.append(level)
            day_bins[day] = bins
        return day_bins

    def test_shape_and_threshold(self):
        matrix = build_density_matrix(self._synthetic_days())
        assert matrix.cells.shape == (28, 144)
        assert matrix.missing_fraction() == 0.0

    def test_afternoon_darker_than_night(self):
        matrix = build_density_matrix(self._synthetic_days())
        afternoon = matrix.hour_band_fraction(12.0, 24.0)
        night = matrix.hour_band_fraction(0.0, 6.0)
        assert afternoon > night + 0.3

    def test_weekends_lighter(self):
        matrix = build_density_matrix(self._synthetic_days())
        weekdays = [d for d in matrix.days if d % 7 < 5]
        weekends = [d for d in matrix.days if d % 7 >= 5]
        assert matrix.high_fraction_for_days(weekends) < (
            matrix.high_fraction_for_days(weekdays)
        )

    def test_lost_bins_render_missing(self):
        day_bins = self._synthetic_days(7)
        matrix = build_density_matrix(
            day_bins, lost_bins={3: set(range(10))}
        )
        row = matrix.days.index(3)
        assert (matrix.cells[row, :10] == DensityCell.MISSING).all()

    def test_rejects_wrong_bin_count(self):
        with pytest.raises(ValueError):
            build_density_matrix({0: [1, 2, 3]})

    def test_raw_threshold_grows_with_trend(self):
        """The constant detrended threshold maps to growing raw counts
        (the paper's 345 -> 770)."""
        day_bins = {}
        for day in range(60):
            growth = 1.0 + 0.02 * day
            day_bins[day] = [int(100 * growth)] * 72 + [int(300 * growth)] * 72
        matrix = build_density_matrix(day_bins)
        early = matrix.raw_threshold_equivalent(2)
        late = matrix.raw_threshold_equivalent(57)
        assert late > 1.5 * early


class TestContribution:
    def _daily(self):
        daily = {}
        rng_shift = 0
        for day in range(5):
            records = []
            base = day * 86400.0
            # Three peers with differing update volumes, unrelated to
            # share; peer asn 1 produces 1 update, asn 2 -> 3, asn 3 -> 6.
            for i, (asn, n) in enumerate([(1, 1), (2, 3), (3, 6)]):
                for j in range(n):
                    records.append(
                        W(base + i * 100 + j, prefix=f"10.{asn}.{j}.0/24",
                          asn=asn, peer=asn)
                    )
            daily[day] = classified(records)
        return daily

    def test_points_one_per_peer_per_day(self):
        shares = {1: 0.6, 2: 0.3, 3: 0.1}
        points = contribution_points(
            self._daily(), shares, UpdateCategory.WWDUP
        )
        assert len(points) == 5 * 3

    def test_update_shares_sum_to_one_per_day(self):
        shares = {1: 0.6, 2: 0.3, 3: 0.1}
        points = contribution_points(
            self._daily(), shares, UpdateCategory.WWDUP
        )
        for day in range(5):
            total = sum(p.update_share for p in points if p.day == day)
            assert total == pytest.approx(1.0)

    def test_anticorrelated_example(self):
        shares = {1: 0.6, 2: 0.3, 3: 0.1}  # big share, few updates
        points = contribution_points(
            self._daily(), shares, UpdateCategory.WWDUP
        )
        assert correlation(points) < 0.0

    def test_consistent_dominator_detected(self):
        shares = {1: 0.6, 2: 0.3, 3: 0.1}
        points = contribution_points(
            self._daily(), shares, UpdateCategory.WWDUP
        )
        assert consistent_dominators(points, share_threshold=0.5) == [3]
        assert consistent_dominators(points, share_threshold=0.7) == []

    def test_empty(self):
        assert correlation([]) == 0.0
        assert consistent_dominators([]) == []


class TestDistribution:
    def _updates(self):
        records = []
        # 10 pairs with 2 events, 1 pair with 80 events.
        for i in range(10):
            records.append(W(i * 10.0, prefix=f"10.0.{i}.0/24"))
            records.append(W(i * 10.0 + 5, prefix=f"10.0.{i}.0/24"))
        for j in range(80):
            records.append(W(1000.0 + j, prefix="10.1.0.0/24"))
        return classified(records)

    def test_cdf_structure(self):
        curve = daily_cdf(self._updates(), UpdateCategory.WWDUP)
        assert curve.total_events == 100
        assert curve.cumulative[-1] == pytest.approx(1.0)
        assert curve.thresholds == sorted(curve.thresholds)

    def test_mass_at_or_below(self):
        curve = daily_cdf(self._updates(), UpdateCategory.WWDUP)
        # Pairs with <=2 events hold 20 of 100 events.
        assert curve.mass_at_or_below(2) == pytest.approx(0.2)
        assert curve.mass_at_or_below(80) == pytest.approx(1.0)
        assert curve.mass_at_or_below(1) == 0.0

    def test_none_when_category_absent(self):
        assert daily_cdf(self._updates(), UpdateCategory.AADIFF) is None

    def test_monthly_and_dominated_days(self):
        daily = {0: self._updates(), 1: classified([W(86400.0 + i * 7)
                 for i in range(5)])}
        curves = monthly_cdfs(daily, UpdateCategory.WWDUP)
        assert [c.day for c in curves] == [0, 1]
        # Day 0 has a pair with 80 > 50 events carrying 80% of mass.
        assert dominated_days(curves, k=50, heavy_mass=0.5) == [0]
        masses = mass_below(curves, 50)
        assert masses[0] == pytest.approx(0.2)
        assert masses[1] == pytest.approx(1.0)


class TestAffected:
    def test_fractions(self):
        updates = classified(
            [W(0, prefix="10.0.0.0/24"), W(1, prefix="10.0.1.0/24"),
             A(2, prefix="10.0.2.0/24")]
        )
        day = affected_from_updates(updates, total_pairs=10)
        assert day.any_fraction == pytest.approx(0.3)
        assert day.stable_fraction() == pytest.approx(0.7)
        assert day.fractions[UpdateCategory.WWDUP] == pytest.approx(0.2)

    def test_series_stats_and_coverage_filter(self):
        days = []
        for d in range(10):
            updates = classified(
                [W(d * 86400.0 + i, prefix=f"10.0.{i}.0/24")
                 for i in range(d + 1)]
            )
            coverage = 0.5 if d == 9 else 1.0  # last day badly covered
            days.append(
                affected_from_updates(
                    updates, total_pairs=20, day=d, coverage=coverage
                )
            )
        stats = affected_series_stats(days)
        assert stats.n_days == 9  # day 9 filtered out
        assert stats.any_range[0] == pytest.approx(1 / 20)
        assert stats.any_range[1] == pytest.approx(9 / 20)

    def test_all_days_filtered_raises(self):
        day = affected_from_updates([], total_pairs=5, coverage=0.1)
        with pytest.raises(ValueError):
            affected_series_stats([day])


class TestMultihomingAnalysis:
    def test_count_multihomed_rib(self):
        rib = LocRib()
        # Prefix A: two distinct paths; prefix B: one.
        rib.apply_announce(1, P("10.0.0.0/8"),
                           PathAttributes(as_path=AsPath((7,)), next_hop=1))
        rib.apply_announce(2, P("10.0.0.0/8"),
                           PathAttributes(as_path=AsPath((8,)), next_hop=2))
        rib.apply_announce(1, P("11.0.0.0/8"),
                           PathAttributes(as_path=AsPath((7,)), next_hop=1))
        assert count_multihomed(rib) == 1

    def test_multihomed_by_origin(self):
        pairs = [
            (P("10.0.0.0/8"), 7), (P("10.0.0.0/8"), 8),
            (P("11.0.0.0/8"), 7), (P("11.0.0.0/8"), 7),
        ]
        assert multihomed_by_origin(pairs) == 1

    def test_series_summary_shape(self):
        model = MultihomingGrowthModel(seed=4)
        summary = series_summary(model.series(270))
        assert summary.has_gap
        assert summary.growth_per_day > 0
        assert summary.grew_linearly
        assert summary.final_fraction > 0.25
        # The late-May upgrade is the peak.
        assert 55 <= summary.peak_day <= 59


class TestDensityAscii:
    def _matrix(self):
        day_bins = {}
        for day in range(14):
            weekend = day % 7 >= 5
            bins = []
            for b in range(144):
                hour = b / 6.0
                level = 30 if hour < 6 else (400 if 12 <= hour else 150)
                if weekend:
                    level //= 4
                bins.append(level)
            day_bins[day] = bins
        return build_density_matrix(day_bins, lost_bins={3: set(range(144))})

    def test_render_fits_box(self):
        art = self._matrix().render_ascii(max_width=40, max_height=24)
        lines = art.splitlines()
        assert len(lines) <= 26  # rows + axis
        assert all(len(line) <= 48 for line in lines)

    def test_render_shows_structure(self):
        art = self._matrix().render_ascii()
        assert "#" in art and "." in art
        # The fully lost day renders as a blank column somewhere.
        assert " " in art.splitlines()[5]

    def test_axis_labels_present(self):
        art = self._matrix().render_ascii()
        assert "12:00" in art
        assert "00:00" in art
