"""Unit and property tests for repro.net.aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.aggregation import (
    aggregate,
    aggregation_ratio,
    covering_set,
    deaggregate,
    punch_hole,
    table_compression_report,
)
from repro.net.prefix import Prefix, PrefixError

from .test_prefix import prefixes


def P(text):
    return Prefix.parse(text)


def _address_set(ps):
    """The covered address space as a canonical union of intervals."""
    intervals = sorted((p.network, p.broadcast) for p in ps)
    merged = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


class TestAggregate:
    def test_siblings_merge(self):
        got = aggregate([P("10.0.0.0/9"), P("10.128.0.0/9")])
        assert got == [P("10.0.0.0/8")]

    def test_cascade_merge(self):
        quarters = list(P("10.0.0.0/8").subnets(10))
        assert aggregate(quarters) == [P("10.0.0.0/8")]

    def test_covered_dropped(self):
        got = aggregate([P("10.0.0.0/8"), P("10.1.0.0/16")])
        assert got == [P("10.0.0.0/8")]

    def test_disjoint_untouched(self):
        ps = [P("10.0.0.0/8"), P("12.0.0.0/8")]
        assert aggregate(ps) == sorted(ps)

    def test_min_length_stops_merging(self):
        got = aggregate([P("10.0.0.0/9"), P("10.128.0.0/9")], min_length=9)
        assert got == [P("10.0.0.0/9"), P("10.128.0.0/9")]

    def test_non_sibling_same_length_do_not_merge(self):
        # 10.64.0.0/10 and 10.128.0.0/10 are not siblings.
        ps = [P("10.64.0.0/10"), P("10.128.0.0/10")]
        assert aggregate(ps) == sorted(ps)

    def test_merge_then_cover(self):
        # Siblings merge to a /16 that then covers an existing /24.
        got = aggregate([P("10.1.0.0/17"), P("10.1.128.0/17"), P("10.1.5.0/24")])
        assert got == [P("10.1.0.0/16")]

    def test_empty(self):
        assert aggregate([]) == []


class TestCoveringSet:
    def test_removes_more_specifics(self):
        got = covering_set([P("10.0.0.0/8"), P("10.1.0.0/16"), P("10.1.2.0/24")])
        assert got == [P("10.0.0.0/8")]

    def test_keeps_disjoint(self):
        ps = [P("10.0.0.0/8"), P("11.0.0.0/8")]
        assert covering_set(ps) == ps

    def test_duplicates_collapse(self):
        assert covering_set([P("10.0.0.0/8"), P("10.0.0.0/8")]) == [P("10.0.0.0/8")]


class TestRatioAndReport:
    def test_perfectly_aggregatable(self):
        ps = list(P("10.0.0.0/8").subnets(16))
        assert aggregation_ratio(ps) == pytest.approx(1 / 256)

    def test_unaggregatable(self):
        ps = [P("10.0.0.0/24"), P("12.0.0.0/24"), P("14.0.0.0/24")]
        assert aggregation_ratio(ps) == 1.0

    def test_empty_is_one(self):
        assert aggregation_ratio([]) == 1.0

    def test_table_report(self):
        report = table_compression_report(
            {
                "good": list(P("10.0.0.0/8").subnets(10)),
                "bad": [P("192.0.2.0/24"), P("198.51.100.0/24")],
            }
        )
        assert report["good"] == pytest.approx(0.25)
        assert report["bad"] == 1.0


class TestDeaggregate:
    def test_split_counts(self):
        got = deaggregate(P("10.0.0.0/22"), 24)
        assert len(got) == 4
        assert all(g.length == 24 for g in got)

    def test_rejects_shorter(self):
        with pytest.raises(PrefixError):
            deaggregate(P("10.0.0.0/24"), 16)

    def test_identity(self):
        assert deaggregate(P("10.0.0.0/24"), 24) == [P("10.0.0.0/24")]


class TestPunchHole:
    def test_remainder_covers_exactly(self):
        block = P("10.0.0.0/22")
        hole = P("10.0.1.0/24")
        rest = punch_hole(block, hole)
        # remainder + hole must equal the block, with no overlap
        assert _address_set(rest + [hole]) == _address_set([block])
        assert all(not r.overlaps(hole) for r in rest)

    def test_hole_equal_to_block_leaves_nothing(self):
        assert punch_hole(P("10.0.0.0/24"), P("10.0.0.0/24")) == []

    def test_rejects_outside_hole(self):
        with pytest.raises(PrefixError):
            punch_hole(P("10.0.0.0/24"), P("11.0.0.0/24"))

    def test_remainder_size_is_depth(self):
        rest = punch_hole(P("10.0.0.0/16"), P("10.0.255.0/24"))
        assert len(rest) == 8  # one sibling per level 17..24


@settings(max_examples=60)
@given(st.sets(prefixes(min_length=6, max_length=24), max_size=12))
def test_aggregate_preserves_coverage(ps):
    before = _address_set(ps)
    after = _address_set(aggregate(ps))
    assert before == after


@settings(max_examples=60)
@given(st.sets(prefixes(min_length=6, max_length=24), max_size=12))
def test_aggregate_never_grows(ps):
    assert len(aggregate(ps)) <= max(len(ps), 1)


@settings(max_examples=60)
@given(st.sets(prefixes(min_length=6, max_length=24), max_size=12))
def test_aggregate_idempotent(ps):
    once = aggregate(ps)
    assert aggregate(once) == once


@settings(max_examples=60)
@given(st.sets(prefixes(max_length=24), max_size=12))
def test_covering_set_members_disjoint(ps):
    kept = covering_set(ps)
    for i, a in enumerate(kept):
        for b in kept[i + 1:]:
            assert not a.overlaps(b)
