"""Unit and property tests for the taxonomy and streaming classifier.

These test the paper's central definitions, so they are deliberately
exhaustive about sequence semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, PathAttributes
from repro.collector.record import UpdateKind, UpdateRecord
from repro.core.classifier import StreamClassifier, classify
from repro.core.taxonomy import (
    FIGURE2_CATEGORIES,
    INSTABILITY_CATEGORIES,
    PATHOLOGICAL_CATEGORIES,
    UpdateCategory,
)
from repro.net.prefix import Prefix

P = Prefix.parse
PFX = P("192.42.113.0/24")

ATTRS_A = PathAttributes(as_path=AsPath((701, 3561)), next_hop=1)
ATTRS_B = PathAttributes(as_path=AsPath((1239, 3561)), next_hop=2)
#: Same forwarding tuple as ATTRS_A, different policy attributes.
ATTRS_A_POLICY = PathAttributes(
    as_path=AsPath((701, 3561)), next_hop=1, med=42,
    communities=frozenset({0xFF}),
)


def A(time, attrs=ATTRS_A, peer=1, asn=701, prefix=PFX):
    return UpdateRecord(time, peer, asn, prefix, UpdateKind.ANNOUNCE, attrs)


def W(time, peer=1, asn=701, prefix=PFX):
    return UpdateRecord(time, peer, asn, prefix, UpdateKind.WITHDRAW)


def categories(records):
    return [u.category for u in classify(records)]


class TestSequences:
    def test_first_announce_is_new(self):
        assert categories([A(0)]) == [UpdateCategory.NEW_ANNOUNCE]

    def test_first_withdraw_is_wwdup(self):
        """A withdrawal from a peer that never announced the prefix is
        the paper's signature pathology."""
        assert categories([W(0)]) == [UpdateCategory.WWDUP]

    def test_aadup_identical_announce(self):
        cats = categories([A(0), A(1)])
        assert cats == [UpdateCategory.NEW_ANNOUNCE, UpdateCategory.AADUP]

    def test_aadup_policy_change_flagged(self):
        updates = list(classify([A(0), A(1, ATTRS_A_POLICY)]))
        assert updates[1].category is UpdateCategory.AADUP
        assert updates[1].policy_change

    def test_pure_aadup_not_policy_flagged(self):
        updates = list(classify([A(0), A(1)]))
        assert not updates[1].policy_change

    def test_aadiff_different_path(self):
        cats = categories([A(0), A(1, ATTRS_B)])
        assert cats[1] is UpdateCategory.AADIFF

    def test_aadiff_nexthop_only_change(self):
        changed = PathAttributes(as_path=AsPath((701, 3561)), next_hop=9)
        cats = categories([A(0), A(1, changed)])
        assert cats[1] is UpdateCategory.AADIFF

    def test_plain_withdraw_of_reachable_route(self):
        cats = categories([A(0), W(1)])
        assert cats[1] is UpdateCategory.PLAIN_WITHDRAW

    def test_wadup_reannounce_same_route(self):
        cats = categories([A(0), W(1), A(2)])
        assert cats[2] is UpdateCategory.WADUP

    def test_wadiff_reannounce_different_route(self):
        cats = categories([A(0), W(1), A(2, ATTRS_B)])
        assert cats[2] is UpdateCategory.WADIFF

    def test_wwdup_repeated_withdrawals(self):
        cats = categories([A(0), W(1), W(2), W(3)])
        assert cats[1] is UpdateCategory.PLAIN_WITHDRAW
        assert cats[2] is UpdateCategory.WWDUP
        assert cats[3] is UpdateCategory.WWDUP

    def test_wadup_policy_variant_is_wadiff_on_tuple_change_only(self):
        """Re-announcement with the same forwarding tuple but different
        policy attributes is still a WADup per the paper's tuple rule."""
        cats = categories([A(0), W(1), A(2, ATTRS_A_POLICY)])
        assert cats[2] is UpdateCategory.WADUP

    def test_oscillation_sequence(self):
        """The paper's A1, A2, A1 oscillation: AADIFF then AADIFF."""
        cats = categories([A(0), A(1, ATTRS_B), A(2, ATTRS_A)])
        assert cats == [
            UpdateCategory.NEW_ANNOUNCE,
            UpdateCategory.AADIFF,
            UpdateCategory.AADIFF,
        ]

    def test_full_flap_cycle(self):
        """W-A-W-A oscillation of the same route: WADup each time."""
        cats = categories([A(0), W(1), A(2), W(3), A(4)])
        assert cats[2] is UpdateCategory.WADUP
        assert cats[4] is UpdateCategory.WADUP


class TestStateIsolation:
    def test_peers_tracked_independently(self):
        cats = categories([A(0, peer=1), W(1, peer=2)])
        # Peer 2 never announced: its withdrawal is WWDup even though
        # peer 1 has the route up.
        assert cats[1] is UpdateCategory.WWDUP

    def test_prefixes_tracked_independently(self):
        other = P("10.0.0.0/8")
        cats = categories([A(0), A(1, prefix=other), A(2)])
        assert cats == [
            UpdateCategory.NEW_ANNOUNCE,
            UpdateCategory.NEW_ANNOUNCE,
            UpdateCategory.AADUP,
        ]

    def test_state_persists_across_classify_calls(self):
        clf = StreamClassifier()
        list(classify([A(0)], clf))
        (second,) = list(classify([A(1)], clf))
        assert second.category is UpdateCategory.AADUP

    def test_reset_clears_state(self):
        clf = StreamClassifier()
        clf.feed(A(0))
        clf.reset()
        assert clf.feed(A(1)).category is UpdateCategory.NEW_ANNOUNCE

    def test_reachability_introspection(self):
        clf = StreamClassifier()
        clf.feed(A(0, peer=5))
        assert clf.is_reachable(5, PFX)
        clf.feed(W(1, peer=5))
        assert not clf.is_reachable(5, PFX)
        assert clf.tracked_routes() == 1


class TestTaxonomySets:
    def test_instability_and_pathology_disjoint(self):
        assert not (INSTABILITY_CATEGORIES & PATHOLOGICAL_CATEGORIES)

    def test_instability_membership(self):
        assert UpdateCategory.WADUP.is_instability
        assert UpdateCategory.AADIFF.is_instability
        assert not UpdateCategory.AADUP.is_instability

    def test_pathology_membership(self):
        assert UpdateCategory.WWDUP.is_pathological
        assert UpdateCategory.AADUP.is_pathological
        assert not UpdateCategory.WADIFF.is_pathological

    def test_uncategorized(self):
        assert UpdateCategory.NEW_ANNOUNCE.is_uncategorized
        assert UpdateCategory.PLAIN_WITHDRAW.is_uncategorized

    def test_figure2_excludes_wwdup(self):
        assert UpdateCategory.WWDUP not in FIGURE2_CATEGORIES

    def test_labels_match_paper(self):
        assert UpdateCategory.AADUP.label == "AA Duplicate"
        assert UpdateCategory.WADIFF.label == "WA Different"


# -- property-based: classifier invariants ---------------------------------

events = st.lists(
    st.tuples(
        st.sampled_from(["A1", "A2", "W"]),
        st.integers(1, 3),  # peer id
    ),
    max_size=40,
)


@settings(max_examples=100)
@given(events)
def test_classifier_invariants(seq):
    """Category must be consistent with a simple reachability model."""
    attrs = {"A1": ATTRS_A, "A2": ATTRS_B}
    records = []
    for i, (op, peer) in enumerate(seq):
        if op == "W":
            records.append(W(float(i), peer=peer))
        else:
            records.append(A(float(i), attrs[op], peer=peer))
    reachable = {}
    announced_ever = set()
    for record, update in zip(records, classify(records)):
        key = (record.peer_id, record.prefix)
        cat = update.category
        if record.kind is UpdateKind.WITHDRAW:
            if reachable.get(key):
                assert cat is UpdateCategory.PLAIN_WITHDRAW
            else:
                assert cat is UpdateCategory.WWDUP
            reachable[key] = False
        else:
            if key not in announced_ever:
                assert cat is UpdateCategory.NEW_ANNOUNCE
            elif reachable.get(key):
                assert cat in (UpdateCategory.AADUP, UpdateCategory.AADIFF)
            else:
                assert cat in (UpdateCategory.WADUP, UpdateCategory.WADIFF)
            reachable[key] = True
            announced_ever.add(key)


@settings(max_examples=50)
@given(events)
def test_every_update_gets_exactly_one_category(seq):
    records = []
    for i, (op, peer) in enumerate(seq):
        if op == "W":
            records.append(W(float(i), peer=peer))
        else:
            records.append(A(float(i), ATTRS_A if op == "A1" else ATTRS_B, peer=peer))
    updates = list(classify(records))
    assert len(updates) == len(records)
    for u in updates:
        assert isinstance(u.category, UpdateCategory)
        # Exactly one of the three super-classes.
        flags = [
            u.category.is_instability,
            u.category.is_pathological,
            u.category.is_uncategorized,
        ]
        assert sum(flags) == 1
