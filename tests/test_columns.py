"""Columnar tier equivalence tests.

The streaming classifier is the reference implementation of the
paper's taxonomy; the columnar tier must reproduce it bit for bit.
These tests assert record-for-record agreement on randomized mixed
streams (including cross-batch state carryover), lossless conversion,
archive roundtrips, and equality of every columnar analysis entry
point with its streaming counterpart.
"""

import io
import random

import numpy as np
import pytest

from repro.analysis.distribution import daily_cdf
from repro.analysis.interarrival import (
    histogram_proportions,
    interarrival_columns,
    interarrival_times,
)
from repro.analysis.timeseries import bin_records
from repro.bgp.attributes import AsPath, PathAttributes
from repro.collector.log import FileLog
from repro.collector.mrt import (
    read_column_batches,
    read_records,
    write_columns,
    write_records,
)
from repro.collector.record import UpdateKind, UpdateRecord
from repro.core.classifier import StreamClassifier, classify
from repro.core.columns import (
    NO_ATTR,
    AttributeTable,
    ColumnClassifier,
    RecordColumns,
    classify_columns,
    decode_categories,
)
from repro.core.instability import (
    CategoryCounts,
    counts_by_peer,
    counts_by_peer_columns,
    counts_by_prefix_as,
    counts_by_prefix_as_columns,
)
from repro.core.taxonomy import UpdateCategory
from repro.net.prefix import Prefix
from repro.workloads.generator import TraceGenerator

#: A small attribute vocabulary exercising every comparison outcome:
#: two distinct forwarding tuples, plus MED-only variants of each
#: (same forwarding, different full bundle — the policy-change case).
_PATH_A = AsPath((701, 3561))
_PATH_B = AsPath((1239, 3561))
ATTR_POOL = tuple(
    PathAttributes(as_path=path, next_hop=hop, med=med)
    for path, hop in ((_PATH_A, 1), (_PATH_B, 2))
    for med in (None, 10, 20)
)


def random_stream(rng, n, n_peers=3, n_prefixes=5):
    """A mixed announce/withdraw stream over a small route universe,
    dense enough that every taxonomy transition occurs."""
    prefixes = [Prefix((10 << 24) + (i << 8), 24) for i in range(n_prefixes)]
    records = []
    for i in range(n):
        peer = rng.randrange(n_peers)
        prefix = rng.choice(prefixes)
        if rng.random() < 0.55:
            records.append(
                UpdateRecord(
                    float(i), peer + 1, 700 + peer, prefix,
                    UpdateKind.ANNOUNCE, rng.choice(ATTR_POOL),
                )
            )
        else:
            records.append(
                UpdateRecord(
                    float(i), peer + 1, 700 + peer, prefix,
                    UpdateKind.WITHDRAW,
                )
            )
    return records


def assert_matches_streaming(batches):
    """Classify ``batches`` on both tiers (carrying state across
    batches) and compare every record's category and policy flag."""
    streaming = StreamClassifier()
    columnar = ColumnClassifier()
    table = AttributeTable()
    for batch in batches:
        columns = RecordColumns.from_records(batch, table)
        codes, policy = columnar.classify(columns)
        expected = list(classify(batch, streaming))
        assert len(expected) == len(codes)
        for i, update in enumerate(expected):
            assert codes[i] == update.category.value, (i, update)
            assert policy[i] == update.policy_change, (i, update)


class TestClassifyEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_single_batch(self, seed):
        rng = random.Random(seed)
        assert_matches_streaming([random_stream(rng, 600)])

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_cross_batch_carryover(self, seed):
        """Day-by-day classification must equal one continuous stream:
        reachability, ever-announced and last-attribute state all carry
        across batch boundaries."""
        rng = random.Random(100 + seed)
        batches = [
            random_stream(rng, rng.randrange(1, 250)) for _ in range(5)
        ]
        assert_matches_streaming(batches)

    def test_tiny_batches(self):
        """One-record batches force every comparison through the carry
        path."""
        rng = random.Random(42)
        stream = random_stream(rng, 60)
        assert_matches_streaming([[r] for r in stream])

    def test_empty_batch(self):
        codes, policy = classify_columns(RecordColumns.empty())
        assert len(codes) == 0 and len(policy) == 0

    def test_generated_day_stream(self):
        """The statistical generator's output (the real workload)."""
        generator = TraceGenerator(seed=5)
        records = generator.day_records(3, pair_fraction=0.02)
        assert len(records) > 100
        assert_matches_streaming([records])

    def test_state_introspection_matches(self):
        rng = random.Random(7)
        stream = random_stream(rng, 300)
        streaming = StreamClassifier()
        for record in stream:
            streaming.feed(record)
        columnar = ColumnClassifier()
        columnar.classify(RecordColumns.from_records(stream))
        assert columnar.tracked_routes() == streaming.tracked_routes()
        for record in stream:
            assert columnar.is_reachable(
                record.peer_id, record.prefix
            ) == streaming.is_reachable(record.peer_id, record.prefix)


class TestConversions:
    def test_roundtrip_lossless(self):
        rng = random.Random(1)
        stream = random_stream(rng, 400)
        columns = RecordColumns.from_records(stream)
        assert columns.to_records() == stream
        assert list(columns) == stream
        assert columns.record(17) == stream[17]
        assert columns.prefix(17) == stream[17].prefix

    def test_withdrawals_use_sentinel(self):
        rng = random.Random(2)
        columns = RecordColumns.from_records(random_stream(rng, 100))
        withdraws = columns.kind == int(UpdateKind.WITHDRAW)
        assert (columns.attr_id[withdraws] == NO_ATTR).all()
        assert (columns.attr_id[~withdraws] < len(columns.attrs)).all()

    def test_concat_remaps_foreign_tables(self):
        rng = random.Random(3)
        a = RecordColumns.from_records(random_stream(rng, 150))
        b = RecordColumns.from_records(random_stream(rng, 150))
        merged = RecordColumns.concat([a, b])
        assert merged.to_records() == a.to_records() + b.to_records()

    def test_select_and_sort(self):
        rng = random.Random(4)
        stream = random_stream(rng, 200)
        columns = RecordColumns.from_records(stream)
        odd = columns.select(np.arange(len(columns)) % 2 == 1)
        assert odd.to_records() == stream[1::2]
        shuffled = columns.select(
            np.asarray(rng.sample(range(len(columns)), len(columns)))
        )
        resorted = shuffled.sorted_by_time()
        assert [r.time for r in resorted] == sorted(r.time for r in stream)

    def test_decode_categories(self):
        assert decode_categories(
            np.array([c.value for c in UpdateCategory])
        ) == list(UpdateCategory)


class TestGeneratorColumns:
    def test_day_columns_equals_day_records(self):
        """Both materializations consume identical RNG draws, so the
        streams match record for record, across consecutive days."""
        g_rec = TraceGenerator(seed=9)
        g_col = TraceGenerator(seed=9)
        table = AttributeTable()
        for day in (20, 21):
            records = g_rec.day_records(day, pair_fraction=0.03)
            columns = g_col.day_columns(day, pair_fraction=0.03, attrs=table)
            assert columns.to_records() == records

    def test_day_columns_shares_attribute_table(self):
        generator = TraceGenerator(seed=9)
        table = AttributeTable()
        a = generator.day_columns(20, pair_fraction=0.03, attrs=table)
        b = generator.day_columns(21, pair_fraction=0.03, attrs=table)
        assert a.attrs is table and b.attrs is table


class TestColumnarArchive:
    def test_write_columns_bytes_identical(self):
        rng = random.Random(5)
        stream = random_stream(rng, 300)
        columns = RecordColumns.from_records(stream)
        buf_columns, buf_records = io.BytesIO(), io.BytesIO()
        write_columns(buf_columns, columns)
        write_records(buf_records, stream)
        assert buf_columns.getvalue() == buf_records.getvalue()

    def test_read_column_batches_matches_streaming_reader(self):
        rng = random.Random(6)
        stream = random_stream(rng, 500)
        buf = io.BytesIO()
        write_records(buf, stream)
        buf.seek(0)
        expected = list(read_records(buf))
        buf.seek(0)
        batches = list(read_column_batches(buf, batch_size=64))
        assert all(len(b) <= 64 for b in batches)
        assert sum(len(b) for b in batches) == len(expected)
        merged = RecordColumns.concat(batches)
        assert merged.to_records() == expected

    def test_filelog_columnar_roundtrip(self, tmp_path):
        generator = TraceGenerator(seed=8)
        columns = generator.day_columns(2, pair_fraction=0.02)
        log = FileLog(tmp_path / "a.mrt")
        with log.writer() as writer:
            writer.extend_columns(columns)
            assert writer.count == len(columns)
        back = log.read_columns()
        # Streaming and columnar readers agree (times quantized to the
        # archive's microsecond resolution by both).
        assert back.to_records() == log.read_all()
        assert len(back) == len(columns)


class TestColumnarAnalyses:
    def _classified(self, seed=11, n=800):
        rng = random.Random(seed)
        stream = random_stream(rng, n)
        columns = RecordColumns.from_records(stream)
        codes, policy = classify_columns(columns)
        updates = list(classify(stream))
        return stream, columns, codes, policy, updates

    def test_category_counts_from_codes(self):
        _, _, codes, policy, updates = self._classified()
        expected = CategoryCounts()
        expected.extend(updates)
        result = CategoryCounts.from_codes(codes, policy)
        assert result.counts == expected.counts
        assert result.policy_changes == expected.policy_changes
        assert result.instability == expected.instability
        assert result.pathological == expected.pathological

    def test_counts_by_peer_columns(self):
        _, columns, codes, policy, updates = self._classified()
        expected = counts_by_peer(updates)
        result = counts_by_peer_columns(columns, codes, policy)
        assert set(result) == set(expected)
        for asn in expected:
            assert result[asn].counts == expected[asn].counts
            assert result[asn].policy_changes == expected[asn].policy_changes

    @pytest.mark.parametrize(
        "category", [None, UpdateCategory.AADUP, UpdateCategory.WWDUP]
    )
    def test_counts_by_prefix_as_columns(self, category):
        _, columns, codes, _, updates = self._classified()
        assert counts_by_prefix_as_columns(
            columns, codes, category
        ) == counts_by_prefix_as(updates, category)

    def test_daily_cdf_columns(self):
        _, columns, codes, _, updates = self._classified()
        streaming = daily_cdf(updates, UpdateCategory.AADUP)
        columnar = daily_cdf((columns, codes), UpdateCategory.AADUP)
        assert columnar.thresholds == streaming.thresholds
        assert columnar.cumulative == streaming.cumulative
        assert columnar.total_events == streaming.total_events

    def test_interarrival_columns(self):
        _, columns, codes, _, updates = self._classified()
        for category in (None, UpdateCategory.AADUP):
            streaming = sorted(interarrival_times(updates, category))
            columnar = np.sort(
                interarrival_columns(columns, codes, category)
            )
            assert len(streaming) == len(columnar)
            assert np.allclose(streaming, columnar)
            # The tuple dispatch and the vectorized histogram agree too.
            tupled = interarrival_times((columns, codes), category)
            assert histogram_proportions(tupled) == histogram_proportions(
                interarrival_times(updates, category)
            )

    def test_bin_records_columnar(self):
        stream, columns, _, _, _ = self._classified()
        streaming = bin_records(stream, bin_width=60.0)
        assert (bin_records(columns, bin_width=60.0) == streaming).all()
        times = np.array([r.time for r in stream])
        assert (bin_records(times, bin_width=60.0) == streaming).all()
