"""Unit and property tests for repro.net.prefix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.prefix import (
    MAX_PREFIX_LENGTH,
    Prefix,
    PrefixError,
    common_supernet,
    parse_many,
)


def prefixes(min_length=0, max_length=32):
    """Hypothesis strategy producing valid prefixes."""
    return st.builds(
        lambda addr, length: Prefix(
            addr & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
            if length
            else 0,
            length,
        ),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=min_length, max_value=max_length),
    )


class TestParsing:
    def test_parse_roundtrip(self):
        p = Prefix.parse("192.42.113.0/24")
        assert str(p) == "192.42.113.0/24"
        assert p.network == (192 << 24) | (42 << 16) | (113 << 8)
        assert p.length == 24

    def test_parse_bare_address_is_host_route(self):
        p = Prefix.parse("10.1.2.3")
        assert p.length == 32
        assert str(p) == "10.1.2.3/32"

    def test_parse_zero_prefix(self):
        p = Prefix.parse("0.0.0.0/0")
        assert p.length == 0
        assert p.num_addresses == 1 << 32

    def test_parse_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/24")

    def test_from_host_masks_host_bits(self):
        p = Prefix.from_host("10.0.0.1", 24)
        assert str(p) == "10.0.0.0/24"

    @pytest.mark.parametrize(
        "bad",
        ["10.0.0/24", "10.0.0.256/24", "10.0.0.0/33", "10.0.0.0/x", "a.b.c.d/8"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(PrefixError):
            Prefix.parse(bad)

    def test_parse_many(self):
        ps = parse_many(["10.0.0.0/8", "192.168.0.0/16"])
        assert [str(p) for p in ps] == ["10.0.0.0/8", "192.168.0.0/16"]


class TestRelations:
    def test_covers_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").covers(Prefix.parse("10.1.0.0/16"))

    def test_does_not_cover_less_specific(self):
        assert not Prefix.parse("10.1.0.0/16").covers(Prefix.parse("10.0.0.0/8"))

    def test_covers_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.covers(p)

    def test_contains_operator(self):
        assert Prefix.parse("10.1.0.0/16") in Prefix.parse("10.0.0.0/8")
        assert Prefix.parse("11.0.0.0/8") not in Prefix.parse("10.0.0.0/8")

    def test_contains_address(self):
        p = Prefix.parse("10.0.0.0/8")
        assert (10 << 24) + 5 in p
        assert (11 << 24) not in p

    def test_overlaps_symmetric(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.5.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(Prefix.parse("11.0.0.0/8"))

    def test_ordering_network_major(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("10.1.0.0/16")
        assert sorted([c, b, a]) == [a, b, c]


class TestArithmetic:
    def test_supernet_default_one_bit(self):
        assert str(Prefix.parse("10.1.0.0/16").supernet()) == "10.0.0.0/15"

    def test_supernet_to_length(self):
        assert str(Prefix.parse("10.1.2.0/24").supernet(8)) == "10.0.0.0/8"

    def test_supernet_rejects_longer(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_subnets_halves(self):
        halves = list(Prefix.parse("10.0.0.0/8").subnets())
        assert [str(h) for h in halves] == ["10.0.0.0/9", "10.128.0.0/9"]

    def test_subnets_count(self):
        assert len(list(Prefix.parse("10.0.0.0/8").subnets(12))) == 16

    def test_sibling_xor(self):
        assert str(Prefix.parse("10.0.0.0/9").sibling()) == "10.128.0.0/9"
        assert str(Prefix.parse("10.128.0.0/9").sibling()) == "10.0.0.0/9"

    def test_default_route_has_no_sibling(self):
        with pytest.raises(PrefixError):
            Prefix.parse("0.0.0.0/0").sibling()

    def test_aggregatable_with_sibling_only(self):
        a = Prefix.parse("10.0.0.0/9")
        assert a.is_aggregatable_with(a.sibling())
        assert not a.is_aggregatable_with(Prefix.parse("11.0.0.0/9"))
        assert not a.is_aggregatable_with(Prefix.parse("10.0.0.0/10"))

    def test_bit_indexing(self):
        p = Prefix.parse("128.0.0.0/1")
        assert p.bit(0) == 1
        with pytest.raises(PrefixError):
            p.bit(32)

    def test_broadcast(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.broadcast == p.network + 255


class TestCommonSupernet:
    def test_of_siblings_is_parent(self):
        a = Prefix.parse("10.0.0.0/9")
        assert common_supernet([a, a.sibling()]) == Prefix.parse("10.0.0.0/8")

    def test_of_single_is_self(self):
        p = Prefix.parse("10.1.2.0/24")
        assert common_supernet([p]) == p

    def test_of_disjoint_spans(self):
        sup = common_supernet(
            [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.3.0/24")]
        )
        assert sup.covers(Prefix.parse("10.0.0.0/24"))
        assert sup.covers(Prefix.parse("10.0.3.0/24"))
        assert sup.length == 22

    def test_empty_raises(self):
        with pytest.raises(PrefixError):
            common_supernet([])


class TestProperties:
    @given(prefixes())
    def test_str_parse_roundtrip(self, p):
        assert Prefix.parse(str(p)) == p

    @given(prefixes(max_length=31))
    def test_subnet_halves_cover_exactly(self, p):
        left, right = p.subnets()
        assert p.covers(left) and p.covers(right)
        assert left.num_addresses + right.num_addresses == p.num_addresses
        assert not left.overlaps(right)

    @given(prefixes(min_length=1))
    def test_sibling_is_involution(self, p):
        assert p.sibling().sibling() == p
        assert p.sibling().supernet() == p.supernet()

    @given(prefixes(), prefixes())
    def test_covers_antisymmetric_unless_equal(self, a, b):
        if a.covers(b) and b.covers(a):
            assert a == b

    @given(st.lists(prefixes(), min_size=1, max_size=8))
    def test_common_supernet_covers_all(self, ps):
        sup = common_supernet(ps)
        assert all(sup.covers(p) for p in ps)

    @given(prefixes())
    def test_hashable_and_interchangeable_with_tuple(self, p):
        assert hash(p) == hash((p.network, p.length))
        assert {p: 1}[Prefix(p.network, p.length)] == 1
