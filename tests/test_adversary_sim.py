"""The adversarial scenario pack (repro.sim.adversary + scenarios).

Every attack kind must run on both single engines with identical
digests, survive the parallel driver at 1 and 2 workers with the same
digest (worker-count invariance — attack pulses are partition-local by
construction), produce its signature detection flag, and detect
bit-identically across the streaming tier, the columnar tier, and the
dependency-free verify oracle.
"""

import pytest

from repro.analysis.detection import (
    detect_records,
    detect_records_columnar,
)
from repro.sim.adversary import (
    ATTACK_KINDS,
    AdversaryConfig,
    attack_targets,
    pulse_times,
    scenario_relationships,
    transit_asn,
)
from repro.sim.engine import Engine, SimulationError
from repro.sim.refengine import ReferenceEngine
from repro.sim.scenarios import (
    DAY_SCENARIOS,
    adversary_day_config,
    day_config,
    day_scenario_config,
    run_exchange_day_records,
    simulate,
)
from repro.verify.reference import reference_detect

SIGNATURES = {
    "hijack_moas": "moas_conflict",
    "hijack_subprefix": "subprefix_foreign",
    "route_leak": "valley_violation",
    "path_forgery": "forged_edge",
    "deagg_storm": "subprefix_deagg",
}


class TestConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            AdversaryConfig(kind="dns_poisoning")

    def test_every_kind_has_a_day_scenario_and_signature(self):
        assert set(SIGNATURES) == set(ATTACK_KINDS)
        for kind in ATTACK_KINDS:
            assert kind in DAY_SCENARIOS

    def test_smoke_attacker_homes_at_the_victims_exchange(self):
        config = adversary_day_config("hijack_moas", smoke=True)
        adversary = config.adversary
        # attended() homes provider p at exchange p % exchanges, so
        # victim 1 and attacker 1 + exchanges share a home exchange —
        # the route server there sees both origins.
        assert adversary.attacker % config.exchanges == (
            adversary.victim % config.exchanges
        )

    def test_day_scenario_config_normalizes_hyphens(self):
        config = day_scenario_config("hijack-moas", smoke=True, seed=None)
        assert config.adversary is not None
        with pytest.raises(SimulationError):
            day_scenario_config("no_such_day", smoke=True, seed=None)

    def test_plain_day_has_no_adversary(self):
        assert day_config(smoke=True).adversary is None


class TestPulses:
    def test_pulse_times_are_deterministic_and_ordered(self):
        config = adversary_day_config("hijack_moas", smoke=True)
        pulses = pulse_times(config, config.adversary)
        assert pulses == pulse_times(config, config.adversary)
        assert pulses  # at least one pulse lands inside the day
        times = [announce for announce, _ in pulses]
        assert times == sorted(times)
        end = config.end_time
        for announce, withdraw in pulses:
            assert config.settle < announce < end
            assert withdraw == announce + config.adversary.up_time

    def test_different_attackers_get_different_jitter(self):
        config = adversary_day_config("hijack_moas", smoke=True)
        other = AdversaryConfig(kind="hijack_moas", attacker=7)
        assert pulse_times(config, config.adversary) != pulse_times(
            config, other
        )


class TestTargets:
    def test_route_leak_path_traverses_the_victims_transit(self):
        config = adversary_day_config("route_leak", smoke=True)
        adversary = config.adversary
        targets = attack_targets(config, adversary, next_hop=1)
        assert targets
        for _, attributes in targets:
            assert tuple(attributes.as_path) == (
                transit_asn(adversary.victim), 1000 + adversary.victim,
            )

    def test_forgery_claims_the_victims_origin(self):
        config = adversary_day_config("path_forgery", smoke=True)
        targets = attack_targets(config, config.adversary, next_hop=1)
        for _, attributes in targets:
            assert tuple(attributes.as_path) == (
                1000 + config.adversary.victim,
            )

    def test_moas_and_deagg_use_default_origination(self):
        for kind in ("hijack_moas", "hijack_subprefix", "deagg_storm"):
            config = adversary_day_config(kind, smoke=True)
            targets = attack_targets(config, config.adversary, next_hop=1)
            assert targets
            assert all(attrs is None for _, attrs in targets)

    def test_subprefix_targets_are_more_specifics(self):
        config = adversary_day_config("hijack_subprefix", smoke=True)
        targets = attack_targets(config, config.adversary, next_hop=1)
        assert all(
            prefix.length == config.adversary.subnet_length
            for prefix, _ in targets
        )

    def test_leak_topology_declares_the_leaky_edge(self):
        config = adversary_day_config("route_leak", smoke=True)
        rel = scenario_relationships(config)
        adversary = config.adversary
        assert rel.hop(
            1000 + adversary.attacker, transit_asn(adversary.victim)
        ) == "up"
        # without the adversary the edge does not exist
        plain = scenario_relationships(day_config(smoke=True))
        assert plain.hop(
            1000 + adversary.attacker, transit_asn(adversary.victim)
        ) is None


@pytest.mark.parametrize("kind", ATTACK_KINDS)
class TestScenarios:
    def test_engines_agree_and_signature_fires(self, kind):
        config = adversary_day_config(kind, smoke=True)
        events, digest, records = run_exchange_day_records(Engine, config)
        ref_events, ref_digest, _ = run_exchange_day_records(
            ReferenceEngine, config
        )
        assert (events, digest) == (ref_events, ref_digest)
        detection = detect_records(records, scenario_relationships(config))
        assert detection.counts[SIGNATURES[kind]] > 0

    def test_detection_tiers_and_oracle_agree(self, kind):
        config = adversary_day_config(kind, smoke=True)
        _, _, records = run_exchange_day_records(Engine, config)
        topology = scenario_relationships(config)
        streamed = detect_records(records, topology)
        columnar = detect_records_columnar(
            records, topology, boundaries=(len(records) // 3,)
        )
        oracle = reference_detect(records, topology.edges())
        assert streamed.flags == oracle
        assert columnar.flags == oracle
        assert (
            streamed.detector.state_digest()
            == columnar.detector.state_digest()
        )


@pytest.mark.slow
@pytest.mark.parametrize("kind", ATTACK_KINDS)
def test_worker_count_invariance(kind):
    # The acceptance criterion: identical digests at workers 1 and 2 on
    # the parallel driver, equal to the single-engine run.
    single = simulate(kind, engine="calendar", smoke=True)
    for workers in (1, 2):
        parallel = simulate(
            kind, engine="parallel", workers=workers, smoke=True
        )
        assert parallel.digest == single.digest, (kind, workers)
        assert parallel.events == single.events


def test_hyphenated_scenario_names_work_end_to_end():
    result = simulate("hijack-moas", engine="calendar", smoke=True)
    assert result.scenario == "hijack_moas"
    assert result.events > 0


def test_attack_changes_the_digest():
    plain = simulate("multi_exchange_day", engine="calendar", smoke=True)
    attacked = simulate("hijack_moas", engine="calendar", smoke=True)
    assert plain.digest != attacked.digest


def test_seed_changes_pulse_placement():
    a = simulate("deagg_storm", engine="calendar", smoke=True, seed=1)
    b = simulate("deagg_storm", engine="calendar", smoke=True, seed=2)
    assert a.digest != b.digest
