"""Fault-injection tests for the campaign layer (repro.verify.chaos).

The campaign's contract is that the merged result is a function of the
config alone.  These tests attack that claim through the supported
fault seams — :class:`~repro.campaign.CampaignHooks` kills, on-disk
corruption, completion reordering, and a real SIGKILLed subprocess —
and require the resumed digest to stay bit-identical to an unfaulted
run.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignHooks,
    CampaignLayout,
    KillRun,
    run_campaign,
)
from repro.verify.chaos import run_chaos_campaign

FAST = dict(n_peers=6, total_prefixes=160)


def fast_config(**overrides):
    settings = dict(days=2, seed=5, shards=2, **FAST)
    settings.update(overrides)
    return CampaignConfig(**settings)


@pytest.fixture()
def clean_digest():
    return run_campaign(fast_config()).partial.digest()


class TestHooks:
    def test_order_pending_cannot_change_result(self, tmp_path, clean_digest):
        config = fast_config(out=str(tmp_path / "out"))
        hooks = CampaignHooks(
            order_pending=lambda specs: list(reversed(specs))
        )
        result = run_campaign(config, hooks=hooks)
        assert result.partial.digest() == clean_digest

    def test_kill_at_shard_start_leaves_resumable_state(
        self, tmp_path, clean_digest
    ):
        config = fast_config(out=str(tmp_path / "out"))
        seen = []

        def kill_second(spec):
            seen.append(spec.index)
            if len(seen) == 2:
                raise KillRun("second shard never starts")

        with pytest.raises(KillRun):
            run_campaign(
                config, hooks=CampaignHooks(on_shard_start=kill_second)
            )
        resumed = run_campaign(config, resume=True)
        assert resumed.shards_loaded == 1
        assert resumed.shards_run == 1
        assert resumed.partial.digest() == clean_digest

    def test_kill_in_manifest_window_discards_the_shard(
        self, tmp_path, clean_digest
    ):
        # A kill after the result write but before the manifest write
        # is the crash the manifest-last protocol exists for: the
        # half-written shard must be recomputed, not trusted.
        config = fast_config(out=str(tmp_path / "out"))

        def kill_first(spec, layout):
            assert layout.result_path(spec).exists()
            assert not layout.manifest_path(spec).exists()
            raise KillRun("killed between result and manifest")

        with pytest.raises(KillRun):
            run_campaign(
                config, hooks=CampaignHooks(before_manifest=kill_first)
            )
        layout = CampaignLayout(config.out)
        assert layout.completed(config.shard_plan()) == {}
        resumed = run_campaign(config, resume=True)
        assert resumed.shards_loaded == 0
        assert resumed.partial.digest() == clean_digest

    def test_corrupted_chunk_invalidates_manifested_shard(
        self, tmp_path, clean_digest
    ):
        config = fast_config(out=str(tmp_path / "out"))
        run_campaign(config)
        layout = CampaignLayout(config.out)
        plan = config.shard_plan()
        chunk = layout.chunk_path(plan[0], plan[0].day_lo)
        chunk.write_bytes(chunk.read_bytes()[:100])
        assert layout.load_shard(plan[0]) is None
        assert layout.load_shard(plan[1]) is not None
        resumed = run_campaign(config, resume=True)
        assert resumed.shards_run == 1
        assert resumed.partial.digest() == clean_digest

    def test_on_shard_written_sees_durable_shard(self, tmp_path):
        config = fast_config(out=str(tmp_path / "out"))
        durable = []

        def check(spec, layout):
            durable.append(
                (spec.index, layout.load_shard(spec) is not None)
            )

        run_campaign(config, hooks=CampaignHooks(on_shard_written=check))
        assert durable == [(0, True), (1, True)]


@pytest.mark.chaos
class TestChaosCampaign:
    @pytest.mark.parametrize("seed", range(5))
    def test_fault_seeds_preserve_digest(self, tmp_path, seed):
        # The acceptance bar: >= 5 fault schedules of kills +
        # corruption + reordering, every one converging to the
        # unfaulted digest.
        config = fast_config(out=str(tmp_path / "out"))
        report = run_chaos_campaign(config, seed=seed, rounds=3)
        assert report.ok, report.describe()

    def test_report_describe_lists_faults(self, tmp_path):
        config = fast_config(out=str(tmp_path / "out"))
        report = run_chaos_campaign(config, seed=0, rounds=2)
        text = report.describe()
        assert "chaos seed=0" in text
        assert report.expected_digest in text


@pytest.mark.chaos
@pytest.mark.slow
def test_sigkilled_subprocess_resumes_to_identical_digest(tmp_path):
    """The real thing: SIGKILL an actual campaign process mid-run,
    then resume in-process and compare against the unfaulted run."""
    out = tmp_path / "out"
    config = fast_config(days=4, shards=4, out=str(out))
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    child = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign",
            "--days", "4", "--shards", "4", "--seed", "5",
            "--peers", str(FAST["n_peers"]),
            "--prefixes", str(FAST["total_prefixes"]),
            "--out", str(out),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    # Kill as soon as the first shard reports (mid-campaign, with real
    # on-disk state), or give up waiting and kill wherever it is.
    # lint: allow[DET002] -- watchdog for a real SIGKILL, not a result
    deadline = time.time() + 60
    saw_progress = False
    for line in child.stderr:
        if "ran:" in line:
            saw_progress = True
            break
        # lint: allow[DET002] -- watchdog for a real SIGKILL, not a result
        if time.time() > deadline:
            break
    child.kill()  # SIGKILL
    child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL
    assert saw_progress, "campaign produced no progress before the kill"

    clean = run_campaign(fast_config(days=4, shards=4))
    resumed = run_campaign(config, resume=True)
    assert resumed.complete
    assert resumed.partial.digest() == clean.partial.digest()
