"""Unit and property tests for route-flap damping (RFC 2439 model)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.damping import DampingParameters, RouteFlapDamper
from repro.net.prefix import Prefix

P = Prefix.parse
PFX = P("10.0.0.0/8")
PEER = 1


class TestParameters:
    def test_defaults_are_classic_cisco(self):
        params = DampingParameters()
        assert params.suppress_threshold == 2000.0
        assert params.reuse_threshold == 750.0
        assert params.half_life == 900.0

    def test_decay_rate_halves_in_half_life(self):
        params = DampingParameters()
        assert math.exp(-params.decay_rate * params.half_life) == pytest.approx(0.5)

    def test_ceiling_bounds_suppress_time(self):
        params = DampingParameters()
        # From the ceiling, decay to reuse takes exactly max_suppress_time.
        t = (
            math.log(params.penalty_ceiling / params.reuse_threshold)
            / params.decay_rate
        )
        assert t == pytest.approx(params.max_suppress_time)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            DampingParameters(suppress_threshold=100.0, reuse_threshold=200.0)

    def test_rejects_nonpositive_half_life(self):
        with pytest.raises(ValueError):
            DampingParameters(half_life=0.0)


class TestSuppression:
    def test_single_flap_not_suppressed(self):
        damper = RouteFlapDamper()
        assert not damper.on_withdrawal(PFX, PEER, 0.0)

    def test_rapid_flaps_suppress(self):
        damper = RouteFlapDamper()
        suppressed = False
        for i in range(3):
            suppressed = damper.on_withdrawal(PFX, PEER, float(i))
        assert suppressed  # 3 * 1000 >> 2000

    def test_penalty_decays(self):
        damper = RouteFlapDamper()
        damper.on_withdrawal(PFX, PEER, 0.0)
        p0 = damper.penalty(PFX, PEER, 0.0)
        p_later = damper.penalty(PFX, PEER, 900.0)  # one half-life
        assert p_later == pytest.approx(p0 / 2, rel=1e-6)

    def test_slow_flaps_never_suppress(self):
        damper = RouteFlapDamper()
        # One flap per 2 half-lives: penalty can never reach 2000.
        for i in range(20):
            assert not damper.on_withdrawal(PFX, PEER, i * 1800.0)

    def test_reuse_after_decay(self):
        damper = RouteFlapDamper()
        for i in range(3):
            damper.on_withdrawal(PFX, PEER, float(i))
        assert damper.is_suppressed(PFX, PEER, 10.0)
        # After several half-lives the penalty is below reuse (750).
        later = 10.0 + 4 * 900.0
        assert not damper.is_suppressed(PFX, PEER, later)
        released = damper.reusable(later)
        assert (PFX, PEER) in released

    def test_readvertisement_while_suppressed_stays_suppressed(self):
        """The paper's warning: a legitimate announcement is delayed."""
        damper = RouteFlapDamper()
        for i in range(4):
            damper.on_withdrawal(PFX, PEER, float(i))
        assert damper.on_readvertisement(PFX, PEER, 60.0)

    def test_penalty_capped_at_ceiling(self):
        damper = RouteFlapDamper()
        for i in range(100):
            damper.on_withdrawal(PFX, PEER, float(i))
        assert damper.penalty(PFX, PEER, 100.0) <= (
            damper.params.penalty_ceiling
        )

    def test_max_suppress_time_bound(self):
        damper = RouteFlapDamper()
        for i in range(100):
            damper.on_withdrawal(PFX, PEER, float(i))
        wait = damper.time_until_reuse(PFX, PEER, 100.0)
        assert wait <= damper.params.max_suppress_time + 1e-6

    def test_time_until_reuse_zero_when_not_suppressed(self):
        damper = RouteFlapDamper()
        damper.on_withdrawal(PFX, PEER, 0.0)
        assert damper.time_until_reuse(PFX, PEER, 0.0) == 0.0

    def test_states_are_per_route(self):
        damper = RouteFlapDamper()
        other = P("11.0.0.0/8")
        for i in range(3):
            damper.on_withdrawal(PFX, PEER, float(i))
        assert damper.is_suppressed(PFX, PEER, 3.0)
        assert not damper.is_suppressed(other, PEER, 3.0)
        assert not damper.is_suppressed(PFX, 2, 3.0)

    def test_suppressed_count(self):
        damper = RouteFlapDamper()
        for i in range(3):
            damper.on_withdrawal(PFX, PEER, float(i))
            damper.on_withdrawal(P("11.0.0.0/8"), PEER, float(i))
        assert damper.suppressed_count(3.0) == 2

    def test_attribute_change_penalty_smaller(self):
        damper = RouteFlapDamper()
        damper.on_attribute_change(PFX, PEER, 0.0)
        assert damper.penalty(PFX, PEER, 0.0) == pytest.approx(500.0)


@settings(max_examples=50)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=10000.0),
        min_size=1,
        max_size=30,
    )
)
def test_penalty_never_negative_or_above_ceiling(offsets):
    damper = RouteFlapDamper()
    now = 0.0
    for offset in sorted(offsets):
        now = offset
        damper.on_withdrawal(PFX, PEER, now)
        p = damper.penalty(PFX, PEER, now)
        assert 0.0 <= p <= damper.params.penalty_ceiling + 1e-9


@settings(max_examples=50)
@given(st.floats(min_value=0.0, max_value=1e6))
def test_is_suppressed_monotone_in_time(dt):
    """Once a route would be reusable at time t, it stays reusable later."""
    damper = RouteFlapDamper()
    for i in range(5):
        damper.on_withdrawal(PFX, PEER, float(i))
    t0 = 5.0 + dt
    if not damper.is_suppressed(PFX, PEER, t0):
        assert not damper.is_suppressed(PFX, PEER, t0 + 1000.0)
