"""Differential tests: calendar-queue Engine vs the reference heap.

The calendar queue (:class:`repro.sim.engine.Engine`) must be
observationally identical to the original binary-heap scheduler
(:class:`repro.sim.refengine.ReferenceEngine`) — same firing order,
same clock, same counts — under every mix of schedule / schedule_at /
cancel / reschedule / step / run_until the mechanism models use.  The
property test drives both engines through identical seeded workloads
and compares full traces; the golden test pins a FlapStormScenario
digest so a behavioral regression in *either* engine is caught even if
they drift together.
"""

import itertools
import random

import pytest

from repro.core.classifier import route_state_digest
from repro.sim.engine import Engine
from repro.sim.flapstorm import FlapStormScenario
from repro.sim.refengine import ReferenceEngine
from repro.verify.golden import FUZZ_SEEDS, TRACE_SEED

#: Delay palette: duplicates force shared buckets, 0.0 exercises
#: same-instant scheduling, the rest spread events across instants.
_DELAYS = (0.0, 0.25, 0.5, 1.0, 1.0, 2.0, 3.5)


def _drive(engine_cls, seed):
    """Run one randomized mixed workload; return the observable trace.

    All decisions come from ``random.Random(seed)`` and the trace the
    engines expose — identical firing order implies identical rng
    streams, so any divergence between engines shows up as a trace
    mismatch rather than a cascade of confusing differences.
    """
    rng = random.Random(seed)
    engine = engine_cls()
    tags = itertools.count()
    trace = []
    handles = []

    def record(tag):
        trace.append(("fire", round(engine.now, 9), tag))

    def spawner(tag, depth):
        trace.append(("fire", round(engine.now, 9), tag))
        if depth:
            # Same-instant append while the drain is mid-bucket.
            handles.append(
                engine.schedule(0.0, spawner, next(tags), depth - 1)
            )

    for _ in range(40):
        for _ in range(rng.randrange(1, 8)):
            roll = rng.random()
            if roll < 0.15:
                handles.append(
                    engine.schedule(0.0, spawner, next(tags), rng.randrange(3))
                )
            elif roll < 0.45 and handles:
                # Overwrite the slot so both engines' handle lists stay
                # positionally equivalent: the calendar queue returns
                # the *same* object on its reuse fast path, the
                # reference heap always returns a fresh one.
                index = rng.randrange(len(handles))
                handles[index] = engine.reschedule(
                    handles[index], engine.now + rng.choice(_DELAYS)
                )
            elif roll < 0.75:
                handles.append(
                    engine.schedule(rng.choice(_DELAYS), record, next(tags))
                )
            else:
                handles.append(
                    engine.schedule_at(
                        engine.now + rng.choice(_DELAYS), record, next(tags)
                    )
                )
        for _ in range(rng.randrange(0, 4)):
            if handles:
                handles[rng.randrange(len(handles))].cancel()
        roll = rng.random()
        if roll < 0.25:
            for _ in range(rng.randrange(1, 5)):
                engine.step()
        elif roll < 0.5:
            processed = engine.run_until(
                engine.now + rng.choice(_DELAYS),
                max_events=rng.choice((None, 1, 2, 5, 17)),
            )
            trace.append(("ran", processed))
        else:
            trace.append(
                ("ran", engine.run_until(engine.now + rng.choice(_DELAYS)))
            )
        trace.append(
            (
                "state",
                engine.pending,
                engine.next_event_time(),
                round(engine.now, 9),
            )
        )
    trace.append(("tail", engine.run(max_events=25)))
    engine.run()
    trace.append(
        (
            "final",
            engine.events_processed,
            round(engine.now, 9),
            engine.pending,
        )
    )
    return trace


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_randomized_workload_equivalence(seed):
    assert _drive(Engine, seed) == _drive(ReferenceEngine, seed)


def _storm_digest(engine_cls):
    engine = engine_cls()
    scenario = FlapStormScenario(
        n_routers=4,
        prefixes_per_router=6,
        seed=TRACE_SEED,
        engine=engine,
    )
    result = scenario.storm(flaps=15, over_seconds=5.0, observe_for=60.0)
    rib_digests = tuple(
        route_state_digest(
            [
                ((peer, prefix.network, prefix.length), True, True, attrs)
                for peer in router.loc_rib.adj_in.peers()
                for prefix, attrs in (
                    router.loc_rib.adj_in.routes_from(peer).items()
                )
            ]
        )
        for router in scenario.routers
    )
    return (
        engine.events_processed,
        round(engine.now, 9),
        result.session_drops,
        result.total_updates_sent,
        result.crashes,
        tuple(round(t, 9) for t in result.drop_times),
        rib_digests,
    )


#: Pinned outcome of the seeded scenario below: (events_processed,
#: final clock, session_drops, total_updates_sent, crashes,
#: drop_times, per-router Adj-RIB-In digests).  This burst stays below
#: the ignition threshold (no drops), so what it pins is the full
#: convergence state: every MRAI flush, CPU-queue completion, and RIB
#: write in scheduler order.
_GOLDEN_STORM = (
    1470,
    180.0,
    0,
    240,
    0,
    (),
    (
        "806a11c21154a83572b38cf948110f2361271fcd89b589a3e0611533966f17f7",
        "a2f6ea26e2636624cf2af9a9047a410cd485f78a8ac4537b236980ce6b4eac0f",
        "41dd54772cee1100439c9d9206803d3c3fa7a7e0deb7b8ea3d2a3c826c077198",
        "0ec9116fac0f38b385d772570109954cb474d52d830756527357ad9a2e890e77",
    ),
)


def test_flap_storm_golden_digest():
    """Both engines reproduce the pinned end-to-end scenario state.

    The constant above is the full observable outcome of a seeded
    FlapStormScenario (seed = repro.verify.golden.TRACE_SEED).  It
    changes only if scheduler ordering, session logic, or RIB state
    changes — any of which is a semantic regression, not a refactor.
    """
    calendar = _storm_digest(Engine)
    reference = _storm_digest(ReferenceEngine)
    assert calendar == reference
    assert calendar == _GOLDEN_STORM
