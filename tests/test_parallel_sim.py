"""Parallel multi-exchange simulation: differential and API tests.

The conservative-lookahead driver (:mod:`repro.sim.parallel`) must be
*invisible* in the results: a partitioned run — any worker count — has
to reproduce the single-engine :class:`ReferenceEngine` oracle's
domain digests bit-for-bit.  The property tests drive seeded
:class:`ExchangeDayConfig` days through oracle and driver and compare;
the golden test pins a 5-exchange parallel digest; the API tests cover
the :class:`EventScheduler` protocol, the :func:`repro.sim.simulate`
façade, the deprecation shims, and the ``sim`` CLI.
"""

import warnings

import pytest

from repro.__main__ import main as repro_main
from repro.sim import (
    Engine,
    EventScheduler,
    ExchangeDayConfig,
    FlapStormScenario,
    ParallelDriver,
    ReferenceEngine,
    SimulationError,
    SynchronizationStudy,
    simulate,
)
from repro.sim.scenarios import day_config, run_exchange_day
from repro.verify.golden import FUZZ_SEEDS, TRACE_SEED


def _small_day(seed: int, exchanges: int = 3) -> ExchangeDayConfig:
    """A minutes-long partitionable day, cheap enough for per-seed
    differential runs."""
    return ExchangeDayConfig(
        exchanges=exchanges,
        providers=8,
        prefixes_per_provider=1,
        settle=30.0,
        duration=240.0,
        seed=seed,
        flap_rate=1.0 / 40.0,
        down_time=10.0,
    )


def _parallel(config: ExchangeDayConfig, workers: int):
    with ParallelDriver(config, workers=workers) as driver:
        driver.run()
        return driver.finish()


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_partitioned_matches_reference_oracle(seed):
    """Inline (workers=1) window loop vs the single reference engine:
    identical per-partition digests and event totals on every seed."""
    config = _small_day(seed)
    events, digest = run_exchange_day(ReferenceEngine, config)
    result = _parallel(config, workers=1)
    assert result.digest == digest
    assert result.events == events
    assert result.workers == 1
    assert result.windows > 1


def test_worker_count_does_not_change_results():
    """2 and 3 real worker processes agree with each other and with
    the single-engine calendar run (canonical injection order makes
    the outcome worker-count-independent)."""
    config = _small_day(FUZZ_SEEDS[0])
    events, digest = run_exchange_day(Engine, config)
    two = _parallel(config, workers=2)
    three = _parallel(config, workers=3)
    assert two.digest == digest == three.digest
    assert two.events == events == three.events
    assert two.workers == 2 and three.workers == 3


#: Pinned combined digest of the 5-exchange golden day below (seed =
#: repro.verify.golden.TRACE_SEED, 2 worker processes).  It changes
#: only if scheduler ordering, session/RIB logic, partition
#: construction, or the cross-exchange protocol changes semantics.
_GOLDEN_DAY_EVENTS = 5480
_GOLDEN_DAY_DIGEST = (
    "f3ebb5ba36565e7d4a8edaa5943419dede31c91beefda997619e2cc6c1307e5a"
)


def _golden_day() -> ExchangeDayConfig:
    return ExchangeDayConfig(
        exchanges=5,
        providers=15,
        prefixes_per_provider=2,
        settle=60.0,
        duration=600.0,
        seed=TRACE_SEED,
        flap_rate=1.0 / 60.0,
        down_time=15.0,
    )


def test_five_exchange_parallel_golden_digest():
    result = _parallel(_golden_day(), workers=2)
    assert result.events == _GOLDEN_DAY_EVENTS
    assert result.digest == _GOLDEN_DAY_DIGEST


def test_golden_digest_matches_single_engine():
    events, digest = run_exchange_day(Engine, _golden_day())
    assert (events, digest) == (_GOLDEN_DAY_EVENTS, _GOLDEN_DAY_DIGEST)


def test_driver_rejects_single_exchange():
    with pytest.raises(SimulationError):
        ParallelDriver(_small_day(1, exchanges=1))


def test_worker_failure_surfaces_as_parallel_error():
    """A worker that dies mid-protocol raises, not hangs."""
    from repro.sim.parallel import ParallelSimError

    driver = ParallelDriver(_small_day(1), workers=2)
    try:
        driver._ports[0].process.terminate()
        driver._ports[0].process.join()
        with pytest.raises(ParallelSimError):
            driver.run()
    finally:
        driver.close()


# -- EventScheduler protocol ------------------------------------------------

def test_engines_implement_event_scheduler():
    assert isinstance(Engine(), EventScheduler)
    assert isinstance(ReferenceEngine(), EventScheduler)
    driver = ParallelDriver(_small_day(1), workers=1)
    try:
        assert isinstance(driver, EventScheduler)
    finally:
        driver.close()


def test_engine_level_cancel():
    for engine_cls in (Engine, ReferenceEngine):
        engine = engine_cls()
        fired = []
        handle = engine.schedule(1.0, fired.append, 1)
        engine.cancel(handle)
        engine.run_until(5.0)
        assert fired == [] and engine.pending == 0


def test_driver_host_side_scheduling():
    """Host events on the window clock fire at/after their instants,
    interleaved with the partitioned run."""
    config = _small_day(2)
    samples = []
    with ParallelDriver(config, workers=1) as driver:
        driver.schedule(50.0, lambda: samples.append(driver.now))
        cancelled = driver.schedule_at(60.0, samples.append, -1.0)
        driver.cancel(cancelled)
        driver.run()
        result = driver.finish()
    assert len(samples) == 1 and samples[0] >= 50.0
    assert -1.0 not in samples
    assert result.events > 0


# -- the simulate() façade --------------------------------------------------

def test_simulate_engines_agree():
    ref = simulate("multi_exchange_day", engine="reference", smoke=True)
    cal = simulate("multi_exchange_day", engine="calendar", smoke=True)
    par = simulate(
        "multi_exchange_day", engine="parallel", workers=2, smoke=True
    )
    assert ref.digest == cal.digest == par.digest
    assert ref.events == cal.events == par.events
    assert par.workers == 2 and par.windows > 1


def test_simulate_seed_changes_digest():
    base = simulate("multi_exchange_day", engine="calendar", smoke=True)
    other = simulate(
        "multi_exchange_day", engine="calendar", smoke=True, seed=11
    )
    assert base.digest != other.digest


def test_simulate_rejects_bad_arguments():
    with pytest.raises(SimulationError):
        simulate("no_such_scenario", smoke=True)
    with pytest.raises(SimulationError):
        simulate("flap_storm", engine="parallel", smoke=True)
    with pytest.raises(SimulationError):
        simulate("flap_storm", engine="no_such_engine", smoke=True)
    with pytest.raises(SimulationError):
        simulate("flap_storm", engine="calendar", workers=4, smoke=True)


def test_day_config_presets():
    full = day_config()
    assert (full.exchanges, full.providers) == (5, 90)
    smoke = day_config(smoke=True, seed=3)
    assert smoke.exchanges < full.exchanges
    assert smoke.end_time < full.end_time
    assert smoke.seed == 3


# -- deprecation shims ------------------------------------------------------

def test_run_storm_shim_warns_and_forwards():
    def scenario():
        return FlapStormScenario(
            n_routers=3, prefixes_per_router=2, seed=1
        )

    with pytest.warns(DeprecationWarning, match="run_storm"):
        old = scenario().run_storm(
            flaps=5, over_seconds=2.0, observe_for=30.0
        )
    new = scenario().storm(flaps=5, over_seconds=2.0, observe_for=30.0)
    assert (old.session_drops, old.total_updates_sent, old.drop_times) == (
        new.session_drops, new.total_updates_sent, new.drop_times
    )


def test_sync_run_shim_warns_and_forwards():
    def study():
        return SynchronizationStudy(n=4, seed=2, external_rate=0.0)

    with pytest.warns(DeprecationWarning, match="advance"):
        old = study()
        old.run(600.0)
    new = study()
    new.advance(600.0)
    assert old.final_coherence() == new.final_coherence()


def test_canonical_entry_points_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        SynchronizationStudy(n=3, seed=1, external_rate=0.0).advance(120.0)
        FlapStormScenario(n_routers=3, prefixes_per_router=2).storm(
            flaps=3, over_seconds=2.0, observe_for=20.0
        )


# -- the sim CLI ------------------------------------------------------------

def test_cli_sim_check(capsys):
    rc = repro_main(
        [
            "sim",
            "--scenario", "multi_exchange_day",
            "--engine", "parallel",
            "--workers", "2",
            "--smoke",
            "--check",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "matches the reference oracle" in out


def test_cli_sim_unknown_scenario():
    assert repro_main(["sim", "--scenario", "bogus", "--smoke"]) == 2
