"""The examples must stay runnable: compile checks for all, full runs
for the fast ones."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ("quickstart.py", "damping_study.py")


def test_examples_directory_populated():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 8


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=lambda p: p.name
)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()
