"""The benchmark bar-skip policy (benchmarks/bar_policy.py).

Skipping the timed 4-worker bars must be legitimate only on machines
that cannot physically pass them (< 4 CPUs) or under an explicit
``REPRO_ALLOW_BAR_SKIP`` waiver; on a >= 4-CPU machine a silent skip is
a hard failure.  The CPU count is injectable via ``REPRO_BENCH_CPUS``
so both sides of the policy are testable anywhere.
"""

import importlib.util
import os
from pathlib import Path

import pytest

_POLICY_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bar_policy.py"
)
_spec = importlib.util.spec_from_file_location("bar_policy", _POLICY_PATH)
bar_policy = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bar_policy)


class TestAvailableCpus:
    def test_injected_count_wins(self):
        assert bar_policy.available_cpus({"REPRO_BENCH_CPUS": "8"}) == 8
        assert bar_policy.available_cpus({"REPRO_BENCH_CPUS": "1"}) == 1

    def test_detected_count_is_positive(self):
        assert bar_policy.available_cpus({}) >= 1

    def test_affinity_aware_when_available(self):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("no CPU affinity on this platform")
        assert bar_policy.available_cpus({}) == len(
            os.sched_getaffinity(0)
        )


class TestBarSkipFailure:
    def test_enforced_bar_is_never_a_failure(self):
        assert bar_policy.bar_skip_failure("x", None, 64, {}) is None

    def test_skip_below_four_cpus_is_legitimate(self):
        for cpus in (1, 2, 3):
            assert (
                bar_policy.bar_skip_failure("x", "--no-bar", cpus, {})
                is None
            )

    def test_skip_on_big_box_fails_hard(self):
        failure = bar_policy.bar_skip_failure(
            "campaign 1.7x @ 4 workers", "--no-bar", 4, {}
        )
        assert failure is not None
        assert "campaign 1.7x @ 4 workers" in failure
        assert "--no-bar" in failure
        assert "REPRO_ALLOW_BAR_SKIP" in failure

    def test_explicit_waiver_allows_the_skip(self):
        assert (
            bar_policy.bar_skip_failure(
                "x", "--no-bar", 16, {"REPRO_ALLOW_BAR_SKIP": "1"}
            )
            is None
        )

    def test_empty_waiver_does_not_count(self):
        assert (
            bar_policy.bar_skip_failure(
                "x", "smoke", 8, {"REPRO_ALLOW_BAR_SKIP": ""}
            )
            is not None
        )

    def test_single_process_bar_fails_skip_on_any_box(self):
        # min_cpus=1 bars (generation throughput, table_dump
        # no-regression) run in one process: no CPU count makes the
        # skip legitimate.
        for cpus in (1, 2, 8):
            failure = bar_policy.bar_skip_failure(
                "generation 5x", "--smoke", cpus, {}, min_cpus=1
            )
            assert failure is not None
            assert "generation 5x" in failure

    def test_single_process_bar_honors_the_waiver(self):
        assert (
            bar_policy.bar_skip_failure(
                "generation 5x",
                "--smoke",
                1,
                {"REPRO_ALLOW_BAR_SKIP": "1"},
                min_cpus=1,
            )
            is None
        )


class TestHarnessIntegration:
    def _load(self, name):
        path = _POLICY_PATH.parent / name
        spec = importlib.util.spec_from_file_location(name[:-3], path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_both_harnesses_share_the_policy(self):
        run_bench = self._load("run_bench.py")
        bench_sim = self._load("bench_sim.py")
        assert run_bench.bar_skip_failure is not None
        assert bench_sim.bar_skip_failure is not None
        # identical semantics: same module-level constants
        assert bar_policy.MIN_BAR_CPUS == 4
