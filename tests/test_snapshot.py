"""Tests for routing-table snapshots, diffing, and binary dumps."""

import io

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.rib import LocRib
from repro.bgp.wire import WireError
from repro.collector.snapshot import (
    SnapshotDiff,
    TableSnapshot,
    diff_snapshots,
    dump_table,
    load_table,
    snapshot,
)
from repro.net.prefix import Prefix

P = Prefix.parse


def attrs(path, next_hop=1, **kw):
    return PathAttributes(as_path=AsPath(path), next_hop=next_hop, **kw)


def build_rib():
    rib = LocRib()
    rib.apply_announce(1, P("10.0.0.0/8"), attrs((701,), next_hop=1))
    rib.apply_announce(2, P("10.0.0.0/8"), attrs((1239,), next_hop=2))
    rib.apply_announce(1, P("192.0.2.0/24"), attrs((701, 7018), next_hop=1))
    return rib


class TestSnapshot:
    def test_captures_all_candidates(self):
        snap = snapshot(build_rib(), time=100.0)
        assert len(snap) == 2
        assert len(snap.routes[P("10.0.0.0/8")]) == 2
        assert len(snap.routes[P("192.0.2.0/24")]) == 1
        assert snap.time == 100.0

    def test_multihomed_detection(self):
        snap = snapshot(build_rib())
        assert snap.multihomed_prefixes() == {P("10.0.0.0/8")}

    def test_same_path_twice_not_multihomed(self):
        rib = LocRib()
        # Two peers, identical forwarding path.
        rib.apply_announce(1, P("10.0.0.0/8"), attrs((701,), next_hop=9))
        rib.apply_announce(2, P("10.0.0.0/8"), attrs((701,), next_hop=9))
        assert snapshot(rib).multihomed_prefixes() == set()


class TestDiff:
    def test_no_change(self):
        a = snapshot(build_rib())
        b = snapshot(build_rib())
        diff = diff_snapshots(a, b)
        assert diff.total_changes == 0
        assert diff.churn_rate(len(a)) == 0.0

    def test_added_removed_changed(self):
        rib = build_rib()
        before = snapshot(rib)
        rib.apply_withdraw(1, P("192.0.2.0/24"))          # removed
        rib.apply_announce(3, P("10.0.0.0/8"),
                           attrs((3561,), next_hop=3))     # changed
        rib.apply_announce(1, P("198.51.100.0/24"),
                           attrs((701,), next_hop=1))      # added
        after = snapshot(rib)
        diff = diff_snapshots(before, after)
        assert diff.added == {P("198.51.100.0/24")}
        assert diff.removed == {P("192.0.2.0/24")}
        assert diff.changed == {P("10.0.0.0/8")}
        assert diff.total_changes == 3

    def test_churn_rate(self):
        diff = SnapshotDiff(added={P("10.0.0.0/8")})
        assert diff.churn_rate(10) == pytest.approx(0.1)
        assert diff.churn_rate(0) == 0.0


class TestBinaryDump:
    def test_roundtrip(self):
        snap = snapshot(build_rib(), time=12345.5)
        buffer = io.BytesIO()
        entries = dump_table(buffer, snap)
        assert entries == 3  # 2 candidates + 1
        buffer.seek(0)
        loaded = load_table(buffer)
        assert loaded.time == snap.time
        assert loaded.routes == snap.routes

    def test_empty_table(self):
        snap = snapshot(LocRib())
        buffer = io.BytesIO()
        assert dump_table(buffer, snap) == 0
        buffer.seek(0)
        assert len(load_table(buffer)) == 0

    def test_bad_magic(self):
        with pytest.raises(WireError):
            load_table(io.BytesIO(b"JUNKJUNKJUNK"))

    def test_truncated(self):
        snap = snapshot(build_rib())
        buffer = io.BytesIO()
        dump_table(buffer, snap)
        data = buffer.getvalue()
        with pytest.raises(WireError):
            load_table(io.BytesIO(data[:-8]))

    def test_diff_of_dumped_snapshots(self):
        """Snapshots survive the disk roundtrip well enough to diff."""
        rib = build_rib()
        before_bytes = io.BytesIO()
        dump_table(before_bytes, snapshot(rib))
        rib.apply_announce(1, P("203.0.113.0/24"), attrs((701,)))
        after_bytes = io.BytesIO()
        dump_table(after_bytes, snapshot(rib))
        before_bytes.seek(0)
        after_bytes.seek(0)
        diff = diff_snapshots(
            load_table(before_bytes), load_table(after_bytes)
        )
        assert diff.added == {P("203.0.113.0/24")}
