"""Benchmark: regenerate Figure 2 — monthly update breakdown by taxonomy category.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure2.py --benchmark-only
"""

from repro.experiments.figure2 import run

from .conftest import run_and_verify


def test_figure2(benchmark):
    run_and_verify(benchmark, run)
