#!/usr/bin/env python3
"""Acceptance benchmarks for the columnar tier and the campaign runner.

Default mode measures classify+bin wall-clock on the streaming vs the
columnar tier over the same record stream, verifies the outputs
agree, and writes ``BENCH_columns.json`` at the repo root.  The
acceptance bar is a >=10x columnar speedup.

``--campaign`` mode first times day synthesis itself — the vectorized
generator against the pre-vectorization reference tier
(``repro.verify.refgen``), digest-compared day chunk by day chunk,
with a >=5x single-process bar — then runs the same sharded campaign
at 1, 2, and 4 workers, asserts the merged results are bit-identical,
and writes per-worker wall-clock + speedups, the per-phase
generate/classify/fold breakdown (via the runner's injected clock),
and the machine's CPU count to ``BENCH_campaign.json``.  The >=1.7x
speedup-at-4-workers bar is enforced whenever the machine has >= 4
CPUs — on fewer cores the pool cannot physically beat the inline run,
so the file records the honest numbers and ``bar_skipped_reason`` says
exactly why the bar did not apply.  On a >= 4-CPU machine, skipping
the bar (``--no-bar``) is a *hard failure* unless explicitly waived
with ``REPRO_ALLOW_BAR_SKIP=1`` (see ``benchmarks/bar_policy.py``) —
a CI lane cannot silently stop enforcing it.  The generation bar is
single-process, so its skip needs the waiver on *any* machine.
``--campaign --smoke`` is the CI parity lane: old-vs-new generation
digest check plus one phase-timed 1-worker run, no timing bars, no
RSS probe.

Campaign mode also probes the out-of-core tier: it runs a short and a
long spilling campaign (``python -m repro campaign --out ...``) in
subprocesses, measures each child's peak RSS via ``os.wait4``, and
requires the long horizon's peak to stay within 1.25x of the short
one — the flat-memory claim.  The long run's on-disk chunks are then
resume-loaded and digest-compared against a from-scratch in-memory
run; any mismatch fails the bench.  ``--rss-ceiling-mb`` adds an
absolute ceiling (CI smoke), enforced even under ``--no-bar``; all
failures are raised only after the JSON is written.

``--sim`` mode runs the discrete-event scheduler benchmark
(``benchmarks/bench_sim.py``): three simulator scenarios on the
calendar-queue engine vs the reference heap, digest-checked, written
to ``BENCH_sim.json``.  ``--smoke`` shrinks it to a seconds-long
digest-equivalence check with no timing bar (CI quick lane).

Run:  PYTHONPATH=src python benchmarks/run_bench.py [--records N]
      PYTHONPATH=src python benchmarks/run_bench.py --campaign [--days N]
      PYTHONPATH=src python benchmarks/run_bench.py --sim [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.analysis.timeseries import bin_records
from repro.core.classifier import StreamClassifier
from repro.core.columns import (
    CATEGORY_OF_CODE,
    ColumnClassifier,
    RecordColumns,
)
from repro.core.instability import CategoryCounts
from repro.verify.reference import reference_classify
from repro.workloads.generator import TraceGenerator


def materialize(target_records: int, seed: int):
    """Generate whole days until ``target_records`` rows accumulate,
    on both layouts (identical streams by construction)."""
    g_rec = TraceGenerator(seed=seed)
    g_col = TraceGenerator(seed=seed)
    records, batches = [], []
    day = 0
    while len(records) < target_records:
        records.extend(g_rec.day_records(day, pair_fraction=1.0))
        batches.append(g_col.day_columns(day, pair_fraction=1.0))
        day += 1
    columns = RecordColumns.concat(batches)
    assert len(columns) == len(records)
    return records, columns


def oracle_check(records, sample_size):
    """Check both timed tiers against the naive reference oracle
    (repro.verify.reference) on a prefix of the bench stream, so the
    benchmark can never time wrong answers.

    A stream prefix is closed under classification (per-route state
    depends only on the past), so checking the first ``sample_size``
    records is exact, not approximate.
    """
    sample = list(records[:sample_size])
    expected = reference_classify(sample)
    classifier = StreamClassifier()
    streaming = [
        (update.category.name, update.policy_change)
        for update in (classifier.feed(record) for record in sample)
    ]
    if streaming != expected:
        index = next(
            i for i, (a, b) in enumerate(zip(expected, streaming)) if a != b
        )
        raise SystemExit(
            f"streaming tier disagrees with the reference oracle at "
            f"record {index}: expected {expected[index]}, "
            f"got {streaming[index]}"
        )
    codes, policy = ColumnClassifier().classify(
        RecordColumns.from_records(sample)
    )
    columnar = [
        (CATEGORY_OF_CODE[int(code)].name, bool(flag))
        for code, flag in zip(codes, policy)
    ]
    if columnar != expected:
        index = next(
            i for i, (a, b) in enumerate(zip(expected, columnar)) if a != b
        )
        raise SystemExit(
            f"columnar tier disagrees with the reference oracle at "
            f"record {index}: expected {expected[index]}, "
            f"got {columnar[index]}"
        )
    return len(sample)


def bench_streaming(records, repeats):
    best, counts, bins = None, None, None
    for _ in range(repeats):
        start = time.perf_counter()
        classifier = StreamClassifier()
        counts = CategoryCounts()
        for record in records:
            counts.add(classifier.feed(record))
        bins = bin_records(records, bin_width=600.0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, counts, bins


def bench_columnar(columns, repeats):
    best, counts, bins = None, None, None
    for _ in range(repeats):
        start = time.perf_counter()
        codes, policy = ColumnClassifier().classify(columns)
        counts = CategoryCounts.from_codes(codes, policy)
        bins = bin_records(columns, bin_width=600.0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, counts, bins


try:
    from bar_policy import available_cpus, bar_skip_failure
except ImportError:  # invoked as a package module
    from benchmarks.bar_policy import available_cpus, bar_skip_failure


def _available_cpus() -> int:
    return available_cpus()


def _spawn_campaign_rss(cli_args) -> float:
    """Run ``python -m repro campaign`` in a child process and return
    its peak RSS in MiB, measured by the kernel via ``os.wait4`` (the
    max over the child and any pool workers it waited for)."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", *cli_args],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    _, status, usage = os.wait4(child.pid, 0)
    child.returncode = os.waitstatus_to_exitcode(status)
    if child.returncode != 0:
        raise SystemExit(
            f"RSS probe campaign exited with {child.returncode}: "
            f"repro campaign {' '.join(cli_args)}"
        )
    # ru_maxrss is KiB on Linux, bytes on macOS.
    scale = 1 << 20 if sys.platform == "darwin" else 1 << 10
    return usage.ru_maxrss * (scale / (1 << 20))


def probe_out_of_core(args):
    """Short vs long spilling campaign: peak-RSS ratio + digest parity
    against the in-memory path.  Returns (payload, failures)."""
    from repro.campaign import CampaignConfig, run_campaign

    failures = []
    shards = min(4, args.rss_base_days)
    common = [
        "--shards", str(shards),
        "--workers", str(args.rss_workers),
        "--seed", str(args.seed),
        "--peers", str(args.peers),
        "--prefixes", str(args.prefixes),
    ]
    with tempfile.TemporaryDirectory(prefix="bench-ooc-") as tmp:
        short_out = os.path.join(tmp, "short")
        long_out = os.path.join(tmp, "long")
        print(f"Out-of-core probe: {args.rss_base_days}-day vs "
              f"{args.rss_days}-day campaign, {args.rss_workers} "
              f"worker(s), day chunks spilled to disk")
        rss_short = _spawn_campaign_rss(
            ["--days", str(args.rss_base_days), "--out", short_out, *common]
        )
        print(f"  {args.rss_base_days:3d} days: peak RSS {rss_short:7.1f} MiB")
        rss_long = _spawn_campaign_rss(
            ["--days", str(args.rss_days), "--out", long_out, *common]
        )
        print(f"  {args.rss_days:3d} days: peak RSS {rss_long:7.1f} MiB")
        ratio = rss_long / rss_short
        print(f"  RSS ratio: {ratio:.2f}x (flat-memory bar: 1.25x)")

        # Digest parity: resume-load the long run's chunks (verifying
        # every digest on the way in) and compare against a
        # from-scratch in-memory run of the same config.
        config = CampaignConfig(
            days=args.rss_days,
            seed=args.seed,
            shards=shards,
            n_peers=args.peers,
            total_prefixes=args.prefixes,
            out=long_out,
        )
        loaded = run_campaign(config, resume=True)
        if loaded.shards_run:
            failures.append(
                f"resume-load of the out-of-core run recomputed "
                f"{loaded.shards_run} shard(s); expected all "
                f"{loaded.shards_loaded + loaded.shards_run} loaded"
            )
        in_memory = run_campaign(replace(config, out=None))
        disk_digest = loaded.partial.digest()
        memory_digest = in_memory.partial.digest()
        parity = disk_digest == memory_digest
        print(f"  digest parity vs in-memory: "
              f"{'OK' if parity else 'MISMATCH'} ({disk_digest[:12]})")
        if not parity:
            failures.append(
                f"out-of-core digest {disk_digest} != in-memory "
                f"digest {memory_digest}"
            )

    rss_bar_applies = not args.no_bar
    if rss_bar_applies and ratio > 1.25:
        failures.append(
            f"peak RSS grew {ratio:.2f}x from {args.rss_base_days} to "
            f"{args.rss_days} days (flat-memory bar: 1.25x)"
        )
    if args.rss_ceiling_mb is not None and rss_long > args.rss_ceiling_mb:
        failures.append(
            f"long-run peak RSS {rss_long:.1f} MiB above the "
            f"--rss-ceiling-mb {args.rss_ceiling_mb} MiB ceiling"
        )
    payload = {
        "days_short": args.rss_base_days,
        "days_long": args.rss_days,
        "shards": shards,
        "workers": args.rss_workers,
        "peak_rss_mib_short": round(rss_short, 1),
        "peak_rss_mib_long": round(rss_long, 1),
        "rss_ratio": round(ratio, 3),
        "rss_bar": "long-run peak RSS <= 1.25x the short run",
        "rss_bar_enforced": rss_bar_applies,
        "rss_ceiling_mb": args.rss_ceiling_mb,
        "digest": disk_digest,
        "digest_matches_in_memory": parity,
    }
    return payload, failures


def _columns_digest(columns) -> str:
    """Content digest of one generated day: record bytes + the interned
    attribute bundles in id order (ids are part of the layout)."""
    import hashlib

    digest = hashlib.sha256(columns.data.tobytes())
    names = [str(columns.attrs[i]) for i in range(len(columns.attrs))]
    digest.update(repr(names).encode())
    return digest.hexdigest()


def _generation_pass(config, make_generator):
    """One full generation sweep over the campaign's shard plan,
    exactly as ``run_shard`` drives it (per-shard generator, fresh
    attribute table per day).  Digesting happens off the clock so the
    timing is pure synthesis.  Returns (seconds, records, digests)."""
    from repro.core.columns import AttributeTable

    categories = config.category_set()
    elapsed = 0.0
    records = 0
    digests = []
    for spec in config.shard_plan():
        generator = make_generator(spec)
        for day in spec.days:
            start = time.perf_counter()
            columns = generator.day_columns(
                day,
                pair_fraction=config.pair_fraction,
                categories=categories,
                attrs=AttributeTable(),
            )
            elapsed += time.perf_counter() - start
            records += len(columns)
            digests.append(_columns_digest(columns))
    return elapsed, records, digests


def bench_generation(args, config, cpus):
    """The vectorized day synthesis vs the pre-vectorization tier
    (``repro.verify.refgen``), digest-checked day by day.

    The reference is the actual pre-optimization materialization loop
    — scalar per-record emission plus the O(bins) bin sampler — kept
    in-tree the way ``sim.refengine`` keeps the heap engine, so the
    recorded speedup measures this change honestly and reproducibly.
    Returns (payload, failures).
    """
    from repro.verify.refgen import reference_twin
    from repro.workloads.generator import campaign_generator

    def make_vectorized(spec):
        return campaign_generator(
            n_peers=config.n_peers,
            total_prefixes=config.total_prefixes,
            population_seed=spec.population_seed,
            generator_seed=spec.generator_seed,
        )

    def make_reference(spec):
        return reference_twin(make_vectorized(spec))

    print("Generation: vectorized day synthesis vs the "
          "pre-vectorization reference tier")
    t_ref, records, digests_ref = _generation_pass(config, make_reference)
    print(f"  reference:  {t_ref:7.2f} s ({records / t_ref:10,.0f} records/s)")
    t_vec = None
    for _ in range(args.repeats):
        elapsed, records_vec, digests_vec = _generation_pass(
            config, make_vectorized
        )
        t_vec = elapsed if t_vec is None else min(t_vec, elapsed)
    print(f"  vectorized: {t_vec:7.2f} s ({records / t_vec:10,.0f} records/s)")

    failures = []
    parity = records_vec == records and digests_vec == digests_ref
    print(f"  digest parity old-vs-new path: {'OK' if parity else 'MISMATCH'} "
          f"({len(digests_vec)} day chunk(s))")
    if not parity:
        failures.append(
            "vectorized generation output differs from the "
            "pre-vectorization reference tier"
        )

    speedup = t_ref / t_vec
    if args.no_bar:
        bar_skipped_reason = "--no-bar"
    elif args.smoke:
        bar_skipped_reason = "--smoke"
    else:
        bar_skipped_reason = None
    bar_applies = bar_skipped_reason is None
    print(f"  speedup: {speedup:.2f}x (bar: 5x, "
          f"{'enforced' if bar_applies else f'skipped: {bar_skipped_reason}'})")
    if bar_applies and speedup < 5.0:
        failures.append(
            f"generation speedup {speedup:.2f}x below the 5x bar"
        )
    # Generation is single-process: any box can run this bar, so a
    # skip needs the explicit waiver regardless of CPU count.
    skip_failure = bar_skip_failure(
        "generation 5x", bar_skipped_reason, cpus, min_cpus=1
    )
    if skip_failure:
        failures.append(skip_failure)

    payload = {
        "records": records,
        "reference_seconds": round(t_ref, 4),
        "vectorized_seconds": round(t_vec, 4),
        "reference_records_per_second": round(records / t_ref),
        "vectorized_records_per_second": round(records / t_vec),
        "speedup": round(speedup, 2),
        "reference": "pre-vectorization scalar tier "
                     "(repro.verify.refgen.ReferenceTraceGenerator)",
        "digests_identical": parity,
        "day_chunks_compared": len(digests_vec),
        "bar": "5x vectorized vs reference generation",
        "bar_enforced": bar_applies,
        "bar_skipped_reason": bar_skipped_reason,
    }
    return payload, failures


def run_campaign_bench(args) -> None:
    """Same campaign at 1/2/4 workers: identical digests, honest timings."""
    from repro.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        days=args.days,
        seed=args.seed,
        shards=min(4, args.days),
        n_peers=args.peers,
        total_prefixes=args.prefixes,
    )
    cpus = _available_cpus()
    print(f"Campaign: {config.days} days, {config.shards} shards, "
          f"{config.n_peers} peers x {config.total_prefixes} prefixes "
          f"({cpus} CPU(s) available)")

    generation, failures = bench_generation(args, config, cpus)

    timings = {}
    phases = {}
    digests = {}
    records = 0
    worker_counts = (1,) if args.smoke else (1, 2, 4)
    for workers in worker_counts:
        best = None
        best_phases = None
        for _ in range(args.repeats):
            start = time.perf_counter()
            result = run_campaign(
                config, workers=workers, clock=time.perf_counter
            )
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
                best_phases = result.timings
        timings[workers] = best
        phases[workers] = {
            name: round(seconds, 4)
            for name, seconds in best_phases.items()
        }
        digests[workers] = result.partial.digest()
        records = result.records
        print(f"  {workers} worker(s): {best:.2f} s "
              f"(generate {phases[workers]['generate_seconds']:.2f} / "
              f"classify {phases[workers]['classify_seconds']:.2f} / "
              f"fold {phases[workers]['fold_seconds']:.2f}; "
              f"digest {digests[workers][:12]})")

    reference = digests[1]
    assert all(d == reference for d in digests.values()), (
        "sharded runs disagree across worker counts"
    )
    print(f"All {len(digests)} worker counts bit-identical "
          f"({records:,} records).")

    speedup_4 = None
    if not args.smoke:
        speedup_4 = timings[1] / timings[4]
    if args.smoke:
        bar_skipped_reason = "--smoke"
    elif args.no_bar:
        bar_skipped_reason = "--no-bar"
    elif cpus < 4:
        bar_skipped_reason = f"{cpus} CPU(s) < 4"
    else:
        bar_skipped_reason = None
    bar_applies = bar_skipped_reason is None
    if speedup_4 is not None:
        print(f"Speedup at 4 workers: {speedup_4:.2f}x "
              f"(bar: 1.7x, "
              f"{'enforced' if bar_applies else f'skipped: {bar_skipped_reason}'})")
        if bar_applies and speedup_4 < 1.7:
            failures.append(
                f"speedup {speedup_4:.2f}x below the 1.7x bar on {cpus} CPUs"
            )
    skip_failure = bar_skip_failure(
        "campaign 1.7x @ 4 workers", bar_skipped_reason, cpus
    )
    if skip_failure:
        failures.append(skip_failure)

    out_of_core = None
    if args.smoke:
        print("Out-of-core RSS probe skipped (--smoke).")
    elif args.skip_rss:
        print("Out-of-core RSS probe skipped (--skip-rss).")
    elif not hasattr(os, "wait4"):
        print("Out-of-core RSS probe skipped (no os.wait4 here).")
    else:
        out_of_core, rss_failures = probe_out_of_core(args)
        failures.extend(rss_failures)

    payload = {
        "days": config.days,
        "shards": config.shards,
        "n_peers": config.n_peers,
        "total_prefixes": config.total_prefixes,
        "seed": config.seed,
        "records": records,
        "cpus": cpus,
        "seconds_by_workers": {
            str(w): round(t, 4) for w, t in timings.items()
        },
        "phases_by_workers": {
            str(w): p for w, p in phases.items()
        },
        "speedup_2_workers": (
            round(timings[1] / timings[2], 3) if 2 in timings else None
        ),
        "speedup_4_workers": (
            round(speedup_4, 3) if speedup_4 is not None else None
        ),
        "digests_identical": True,
        "digest": reference,
        "generation": generation,
        "repeats": args.repeats,
        "timing": "best (minimum) of repeats per worker count",
        "bar": "1.7x at 4 workers, enforced only with >= 4 CPUs",
        "bar_enforced": bar_applies,
        "bar_skipped_reason": bar_skipped_reason,
        "out_of_core": out_of_core,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {args.output}")
    if failures:
        raise SystemExit("; ".join(failures))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--campaign", action="store_true",
        help="benchmark the sharded campaign runner instead of the "
             "streaming-vs-columnar tiers",
    )
    parser.add_argument(
        "--sim", action="store_true",
        help="benchmark the discrete-event scheduler (calendar queue "
             "vs reference heap) instead of the columnar tiers",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="sim mode: small sizes, one repeat, digest check only; "
             "campaign mode: generation old-vs-new digest parity plus "
             "one phase-timed 1-worker run, no timing bars, no RSS "
             "probe",
    )
    parser.add_argument("--records", type=int, default=1_000_000)
    parser.add_argument("--days", type=int, default=4,
                        help="campaign mode: campaign length")
    parser.add_argument("--peers", type=int, default=30)
    parser.add_argument("--prefixes", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per tier; the best (minimum) time is reported",
    )
    parser.add_argument(
        "--oracle-sample", type=int, default=50_000,
        help="records checked against the reference oracle before "
             "timing (0 disables)",
    )
    parser.add_argument(
        "--no-bar", action="store_true",
        help="campaign mode: record numbers without enforcing the "
             "speedup / RSS-ratio bars (CI smoke runs; an explicit "
             "--rss-ceiling-mb is still enforced)",
    )
    parser.add_argument(
        "--skip-rss", action="store_true",
        help="campaign mode: skip the out-of-core peak-RSS probe",
    )
    parser.add_argument(
        "--rss-base-days", type=int, default=4,
        help="campaign mode: short-horizon run the RSS ratio compares "
             "against",
    )
    parser.add_argument(
        "--rss-days", type=int, default=30,
        help="campaign mode: long-horizon out-of-core run (the "
             "flat-memory claim: its peak RSS must stay within 1.25x "
             "of the short run's)",
    )
    parser.add_argument(
        "--rss-workers", type=int, default=1,
        help="campaign mode: worker count for the RSS probe runs",
    )
    parser.add_argument(
        "--rss-ceiling-mb", type=float, default=None,
        help="campaign mode: absolute peak-RSS ceiling for the long "
             "out-of-core run, enforced even with --no-bar",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args()
    root = Path(__file__).resolve().parent.parent
    if args.sim:
        try:
            from bench_sim import run_sim_bench
        except ImportError:  # invoked as a package module
            from benchmarks.bench_sim import run_sim_bench

        if args.output is None:
            args.output = str(root / "BENCH_sim.json")
        run_sim_bench(args)
        return
    if args.campaign:
        if args.output is None:
            args.output = str(root / "BENCH_campaign.json")
        run_campaign_bench(args)
        return
    if args.output is None:
        args.output = str(root / "BENCH_columns.json")

    print(f"Materializing >= {args.records:,} records...")
    records, columns = materialize(args.records, args.seed)
    n = len(records)
    print(f"  {n:,} records across {int(columns.time.max() // 86400) + 1} "
          f"days, {len(columns.attrs)} interned attribute bundles")

    oracle_checked = 0
    if args.oracle_sample > 0:
        oracle_checked = oracle_check(records, args.oracle_sample)
        print(f"Oracle check OK: both tiers match the reference oracle "
              f"over the first {oracle_checked:,} records")

    print(f"Streaming classify+bin (best of {args.repeats})...")
    t_stream, counts_stream, bins_stream = bench_streaming(
        records, args.repeats
    )
    print(f"  {t_stream:.2f} s ({n / t_stream:,.0f} records/s)")

    print(f"Columnar classify+bin (best of {args.repeats})...")
    t_col, counts_col, bins_col = bench_columnar(columns, args.repeats)
    print(f"  {t_col:.2f} s ({n / t_col:,.0f} records/s)")

    assert counts_col.counts == counts_stream.counts, "tier disagreement"
    assert counts_col.policy_changes == counts_stream.policy_changes
    assert (bins_col == bins_stream).all()
    speedup = t_stream / t_col
    print(f"Speedup: {speedup:.1f}x (acceptance bar: 10x)")

    payload = {
        "records": n,
        "streaming_seconds": round(t_stream, 4),
        "columnar_seconds": round(t_col, 4),
        "streaming_records_per_second": round(n / t_stream),
        "columnar_records_per_second": round(n / t_col),
        "speedup": round(speedup, 2),
        "workload": "classify + 10-minute binning, generated days, "
                    "pair_fraction=1.0",
        "seed": args.seed,
        "repeats": args.repeats,
        "timing": "best (minimum) of repeats per tier",
        "outputs_identical": True,
        "oracle_checked_records": oracle_checked,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {args.output}")
    if speedup < 10.0:
        raise SystemExit(f"speedup {speedup:.1f}x below the 10x bar")


if __name__ == "__main__":
    main()
