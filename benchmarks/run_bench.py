#!/usr/bin/env python3
"""Acceptance benchmarks for the columnar tier and the campaign runner.

Default mode measures classify+bin wall-clock on the streaming vs the
columnar tier over the same record stream, verifies the outputs
agree, and writes ``BENCH_columns.json`` at the repo root.  The
acceptance bar is a >=10x columnar speedup.

``--campaign`` mode runs the same sharded campaign at 1, 2, and 4
workers, asserts the merged results are bit-identical, and writes
per-worker wall-clock + speedups (and the machine's CPU count) to
``BENCH_campaign.json``.  The >=1.7x speedup-at-4-workers bar is
enforced only when the machine actually has >= 4 CPUs — on fewer
cores the pool cannot physically beat the inline run, so the file
records the honest numbers and the bar is reported as not applicable.

``--sim`` mode runs the discrete-event scheduler benchmark
(``benchmarks/bench_sim.py``): three simulator scenarios on the
calendar-queue engine vs the reference heap, digest-checked, written
to ``BENCH_sim.json``.  ``--smoke`` shrinks it to a seconds-long
digest-equivalence check with no timing bar (CI quick lane).

Run:  PYTHONPATH=src python benchmarks/run_bench.py [--records N]
      PYTHONPATH=src python benchmarks/run_bench.py --campaign [--days N]
      PYTHONPATH=src python benchmarks/run_bench.py --sim [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.analysis.timeseries import bin_records
from repro.core.classifier import StreamClassifier
from repro.core.columns import (
    CATEGORY_OF_CODE,
    ColumnClassifier,
    RecordColumns,
)
from repro.core.instability import CategoryCounts
from repro.verify.reference import reference_classify
from repro.workloads.generator import TraceGenerator


def materialize(target_records: int, seed: int):
    """Generate whole days until ``target_records`` rows accumulate,
    on both layouts (identical streams by construction)."""
    g_rec = TraceGenerator(seed=seed)
    g_col = TraceGenerator(seed=seed)
    records, batches = [], []
    day = 0
    while len(records) < target_records:
        records.extend(g_rec.day_records(day, pair_fraction=1.0))
        batches.append(g_col.day_columns(day, pair_fraction=1.0))
        day += 1
    columns = RecordColumns.concat(batches)
    assert len(columns) == len(records)
    return records, columns


def oracle_check(records, sample_size):
    """Check both timed tiers against the naive reference oracle
    (repro.verify.reference) on a prefix of the bench stream, so the
    benchmark can never time wrong answers.

    A stream prefix is closed under classification (per-route state
    depends only on the past), so checking the first ``sample_size``
    records is exact, not approximate.
    """
    sample = list(records[:sample_size])
    expected = reference_classify(sample)
    classifier = StreamClassifier()
    streaming = [
        (update.category.name, update.policy_change)
        for update in (classifier.feed(record) for record in sample)
    ]
    if streaming != expected:
        index = next(
            i for i, (a, b) in enumerate(zip(expected, streaming)) if a != b
        )
        raise SystemExit(
            f"streaming tier disagrees with the reference oracle at "
            f"record {index}: expected {expected[index]}, "
            f"got {streaming[index]}"
        )
    codes, policy = ColumnClassifier().classify(
        RecordColumns.from_records(sample)
    )
    columnar = [
        (CATEGORY_OF_CODE[int(code)].name, bool(flag))
        for code, flag in zip(codes, policy)
    ]
    if columnar != expected:
        index = next(
            i for i, (a, b) in enumerate(zip(expected, columnar)) if a != b
        )
        raise SystemExit(
            f"columnar tier disagrees with the reference oracle at "
            f"record {index}: expected {expected[index]}, "
            f"got {columnar[index]}"
        )
    return len(sample)


def bench_streaming(records, repeats):
    best, counts, bins = None, None, None
    for _ in range(repeats):
        start = time.perf_counter()
        classifier = StreamClassifier()
        counts = CategoryCounts()
        for record in records:
            counts.add(classifier.feed(record))
        bins = bin_records(records, bin_width=600.0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, counts, bins


def bench_columnar(columns, repeats):
    best, counts, bins = None, None, None
    for _ in range(repeats):
        start = time.perf_counter()
        codes, policy = ColumnClassifier().classify(columns)
        counts = CategoryCounts.from_codes(codes, policy)
        bins = bin_records(columns, bin_width=600.0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, counts, bins


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_campaign_bench(args) -> None:
    """Same campaign at 1/2/4 workers: identical digests, honest timings."""
    from repro.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        days=args.days,
        seed=args.seed,
        shards=min(4, args.days),
        n_peers=args.peers,
        total_prefixes=args.prefixes,
    )
    cpus = _available_cpus()
    print(f"Campaign: {config.days} days, {config.shards} shards, "
          f"{config.n_peers} peers x {config.total_prefixes} prefixes "
          f"({cpus} CPU(s) available)")

    timings = {}
    digests = {}
    records = 0
    for workers in (1, 2, 4):
        best = None
        for _ in range(args.repeats):
            start = time.perf_counter()
            result = run_campaign(config, workers=workers)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        timings[workers] = best
        digests[workers] = result.partial.digest()
        records = result.records
        print(f"  {workers} worker(s): {best:.2f} s "
              f"(digest {digests[workers][:12]})")

    reference = digests[1]
    assert all(d == reference for d in digests.values()), (
        "sharded runs disagree across worker counts"
    )
    print(f"All {len(digests)} worker counts bit-identical "
          f"({records:,} records).")

    speedup_4 = timings[1] / timings[4]
    bar_applies = cpus >= 4 and not args.no_bar
    print(f"Speedup at 4 workers: {speedup_4:.2f}x "
          f"(bar: 1.7x, {'enforced' if bar_applies else 'n/a — '}"
          f"{'' if bar_applies else f'{cpus} CPU(s)'})")

    payload = {
        "days": config.days,
        "shards": config.shards,
        "n_peers": config.n_peers,
        "total_prefixes": config.total_prefixes,
        "seed": config.seed,
        "records": records,
        "cpus": cpus,
        "seconds_by_workers": {
            str(w): round(t, 4) for w, t in timings.items()
        },
        "speedup_2_workers": round(timings[1] / timings[2], 3),
        "speedup_4_workers": round(speedup_4, 3),
        "digests_identical": True,
        "digest": reference,
        "repeats": args.repeats,
        "timing": "best (minimum) of repeats per worker count",
        "bar": "1.7x at 4 workers, enforced only with >= 4 CPUs",
        "bar_enforced": bar_applies,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {args.output}")
    if bar_applies and speedup_4 < 1.7:
        raise SystemExit(
            f"speedup {speedup_4:.2f}x below the 1.7x bar on {cpus} CPUs"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--campaign", action="store_true",
        help="benchmark the sharded campaign runner instead of the "
             "streaming-vs-columnar tiers",
    )
    parser.add_argument(
        "--sim", action="store_true",
        help="benchmark the discrete-event scheduler (calendar queue "
             "vs reference heap) instead of the columnar tiers",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="sim mode: small sizes, one repeat, digest check only",
    )
    parser.add_argument("--records", type=int, default=1_000_000)
    parser.add_argument("--days", type=int, default=4,
                        help="campaign mode: campaign length")
    parser.add_argument("--peers", type=int, default=30)
    parser.add_argument("--prefixes", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per tier; the best (minimum) time is reported",
    )
    parser.add_argument(
        "--oracle-sample", type=int, default=50_000,
        help="records checked against the reference oracle before "
             "timing (0 disables)",
    )
    parser.add_argument(
        "--no-bar", action="store_true",
        help="campaign mode: record numbers without enforcing the "
             "speedup bar (CI smoke runs)",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args()
    root = Path(__file__).resolve().parent.parent
    if args.sim:
        try:
            from bench_sim import run_sim_bench
        except ImportError:  # invoked as a package module
            from benchmarks.bench_sim import run_sim_bench

        if args.output is None:
            args.output = str(root / "BENCH_sim.json")
        run_sim_bench(args)
        return
    if args.campaign:
        if args.output is None:
            args.output = str(root / "BENCH_campaign.json")
        run_campaign_bench(args)
        return
    if args.output is None:
        args.output = str(root / "BENCH_columns.json")

    print(f"Materializing >= {args.records:,} records...")
    records, columns = materialize(args.records, args.seed)
    n = len(records)
    print(f"  {n:,} records across {int(columns.time.max() // 86400) + 1} "
          f"days, {len(columns.attrs)} interned attribute bundles")

    oracle_checked = 0
    if args.oracle_sample > 0:
        oracle_checked = oracle_check(records, args.oracle_sample)
        print(f"Oracle check OK: both tiers match the reference oracle "
              f"over the first {oracle_checked:,} records")

    print(f"Streaming classify+bin (best of {args.repeats})...")
    t_stream, counts_stream, bins_stream = bench_streaming(
        records, args.repeats
    )
    print(f"  {t_stream:.2f} s ({n / t_stream:,.0f} records/s)")

    print(f"Columnar classify+bin (best of {args.repeats})...")
    t_col, counts_col, bins_col = bench_columnar(columns, args.repeats)
    print(f"  {t_col:.2f} s ({n / t_col:,.0f} records/s)")

    assert counts_col.counts == counts_stream.counts, "tier disagreement"
    assert counts_col.policy_changes == counts_stream.policy_changes
    assert (bins_col == bins_stream).all()
    speedup = t_stream / t_col
    print(f"Speedup: {speedup:.1f}x (acceptance bar: 10x)")

    payload = {
        "records": n,
        "streaming_seconds": round(t_stream, 4),
        "columnar_seconds": round(t_col, 4),
        "streaming_records_per_second": round(n / t_stream),
        "columnar_records_per_second": round(n / t_col),
        "speedup": round(speedup, 2),
        "workload": "classify + 10-minute binning, generated days, "
                    "pair_fraction=1.0",
        "seed": args.seed,
        "repeats": args.repeats,
        "timing": "best (minimum) of repeats per tier",
        "outputs_identical": True,
        "oracle_checked_records": oracle_checked,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {args.output}")
    if speedup < 10.0:
        raise SystemExit(f"speedup {speedup:.1f}x below the 10x bar")


if __name__ == "__main__":
    main()
