#!/usr/bin/env python3
"""Columnar-tier acceptance benchmark: streaming vs columnar on a
1M-record synthetic day.

Measures classify+bin wall-clock on both tiers over the same record
stream, verifies the outputs agree, and writes the measurements to
``BENCH_columns.json`` at the repo root.  The acceptance bar is a
>=10x columnar speedup.

Run:  PYTHONPATH=src python benchmarks/run_bench.py [--records N]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.analysis.timeseries import bin_records
from repro.core.classifier import StreamClassifier
from repro.core.columns import ColumnClassifier, RecordColumns
from repro.core.instability import CategoryCounts
from repro.workloads.generator import TraceGenerator


def materialize(target_records: int, seed: int):
    """Generate whole days until ``target_records`` rows accumulate,
    on both layouts (identical streams by construction)."""
    g_rec = TraceGenerator(seed=seed)
    g_col = TraceGenerator(seed=seed)
    records, batches = [], []
    day = 0
    while len(records) < target_records:
        records.extend(g_rec.day_records(day, pair_fraction=1.0))
        batches.append(g_col.day_columns(day, pair_fraction=1.0))
        day += 1
    columns = RecordColumns.concat(batches)
    assert len(columns) == len(records)
    return records, columns


def bench_streaming(records, repeats):
    best, counts, bins = None, None, None
    for _ in range(repeats):
        start = time.perf_counter()
        classifier = StreamClassifier()
        counts = CategoryCounts()
        for record in records:
            counts.add(classifier.feed(record))
        bins = bin_records(records, bin_width=600.0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, counts, bins


def bench_columnar(columns, repeats):
    best, counts, bins = None, None, None
    for _ in range(repeats):
        start = time.perf_counter()
        codes, policy = ColumnClassifier().classify(columns)
        counts = CategoryCounts.from_codes(codes, policy)
        bins = bin_records(columns, bin_width=600.0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, counts, bins


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=1_000_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per tier; the best (minimum) time is reported",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_columns.json"),
    )
    args = parser.parse_args()

    print(f"Materializing >= {args.records:,} records...")
    records, columns = materialize(args.records, args.seed)
    n = len(records)
    print(f"  {n:,} records across {int(columns.time.max() // 86400) + 1} "
          f"days, {len(columns.attrs)} interned attribute bundles")

    print(f"Streaming classify+bin (best of {args.repeats})...")
    t_stream, counts_stream, bins_stream = bench_streaming(
        records, args.repeats
    )
    print(f"  {t_stream:.2f} s ({n / t_stream:,.0f} records/s)")

    print(f"Columnar classify+bin (best of {args.repeats})...")
    t_col, counts_col, bins_col = bench_columnar(columns, args.repeats)
    print(f"  {t_col:.2f} s ({n / t_col:,.0f} records/s)")

    assert counts_col.counts == counts_stream.counts, "tier disagreement"
    assert counts_col.policy_changes == counts_stream.policy_changes
    assert (bins_col == bins_stream).all()
    speedup = t_stream / t_col
    print(f"Speedup: {speedup:.1f}x (acceptance bar: 10x)")

    payload = {
        "records": n,
        "streaming_seconds": round(t_stream, 4),
        "columnar_seconds": round(t_col, 4),
        "streaming_records_per_second": round(n / t_stream),
        "columnar_records_per_second": round(n / t_col),
        "speedup": round(speedup, 2),
        "workload": "classify + 10-minute binning, generated days, "
                    "pair_fraction=1.0",
        "seed": args.seed,
        "repeats": args.repeats,
        "timing": "best (minimum) of repeats per tier",
        "outputs_identical": True,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {args.output}")
    if speedup < 10.0:
        raise SystemExit(f"speedup {speedup:.1f}x below the 10x bar")


if __name__ == "__main__":
    main()
