"""Benchmark: regenerate Figure 10 — multi-homed prefix growth.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure10.py --benchmark-only
"""

from repro.experiments.figure10 import run

from .conftest import run_and_verify


def test_figure10(benchmark):
    run_and_verify(benchmark, run)
