"""Benchmark: regenerate Figure 5 — FFT/MEM/SSA spectral analysis of the update rate.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure5.py --benchmark-only
"""

from repro.experiments.figure5 import run

from .conftest import run_and_verify


def test_figure5(benchmark):
    run_and_verify(benchmark, run)
