"""Streaming vs columnar throughput on a synthetic generated day.

The columnar tier's reason to exist is quantitative: classify+bin a
day of records at least an order of magnitude faster than the
streaming reference.  These benchmarks measure both tiers on the same
materialized stream (statistical repetition via pytest-benchmark); the
1M-record acceptance run lives in ``benchmarks/run_bench.py``, which
records the measured ratio in ``BENCH_columns.json``.

Run with::

    pytest benchmarks/bench_columns.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.timeseries import bin_records
from repro.core.classifier import StreamClassifier
from repro.core.columns import ColumnClassifier, RecordColumns
from repro.core.instability import CategoryCounts
from repro.workloads.generator import TraceGenerator

#: One synthetic day, materialized once per session on both layouts.
_DAY = 7
_PAIR_FRACTION = 0.2
_SEED = 13


@pytest.fixture(scope="module")
def day_records():
    return TraceGenerator(seed=_SEED).day_records(
        _DAY, pair_fraction=_PAIR_FRACTION
    )


@pytest.fixture(scope="module")
def day_columns():
    return TraceGenerator(seed=_SEED).day_columns(
        _DAY, pair_fraction=_PAIR_FRACTION
    )


def test_streaming_classify_bin(benchmark, day_records):
    def run():
        classifier = StreamClassifier()
        counts = CategoryCounts()
        for record in day_records:
            counts.add(classifier.feed(record))
        bins = bin_records(day_records, bin_width=600.0)
        return counts.total + int(bins.sum())

    assert benchmark(run) == 2 * len(day_records)


def test_columnar_classify_bin(benchmark, day_columns):
    def run():
        codes, policy = ColumnClassifier().classify(day_columns)
        counts = CategoryCounts.from_codes(codes, policy)
        bins = bin_records(day_columns, bin_width=600.0)
        return counts.total + int(bins.sum())

    assert benchmark(run) == 2 * len(day_columns)


def test_materialize_day_records(benchmark):
    generator = TraceGenerator(seed=_SEED)

    def run():
        return len(
            generator.day_records(_DAY, pair_fraction=_PAIR_FRACTION)
        )

    assert benchmark(run) > 0


def test_materialize_day_columns(benchmark):
    generator = TraceGenerator(seed=_SEED)

    def run():
        return len(
            generator.day_columns(_DAY, pair_fraction=_PAIR_FRACTION)
        )

    assert benchmark(run) > 0
