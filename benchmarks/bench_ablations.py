"""Benchmarks: the countermeasure ablations DESIGN.md calls out.

Each regenerates one design-choice study — route-flap damping,
CIDR aggregation, route servers, timer jitter (self-synchronization),
and keepalive priority (flap-storm containment) — printing the
reproduced comparison and asserting its checks.  Run with::

    pytest benchmarks/bench_ablations.py --benchmark-only
"""

from repro.experiments.ablations import (
    run_aggregation_study,
    run_cache_study,
    run_convergence_study,
    run_damping_study,
    run_filter_study,
    run_route_server_study,
    run_storm_study,
    run_synchronization_study,
)

from .conftest import run_and_verify


def test_ablation_damping(benchmark):
    run_and_verify(benchmark, run_damping_study)


def test_ablation_aggregation(benchmark):
    run_and_verify(benchmark, run_aggregation_study)


def test_ablation_route_server(benchmark):
    run_and_verify(benchmark, run_route_server_study)


def test_ablation_synchronization(benchmark):
    run_and_verify(benchmark, run_synchronization_study)


def test_ablation_storm(benchmark):
    run_and_verify(benchmark, run_storm_study)


def test_ablation_cache(benchmark):
    run_and_verify(benchmark, run_cache_study)


def test_ablation_convergence(benchmark):
    run_and_verify(benchmark, run_convergence_study)


def test_ablation_filter(benchmark):
    run_and_verify(benchmark, run_filter_study)
