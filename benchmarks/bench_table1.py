"""Benchmark: regenerate Table 1 — per-ISP announce/withdraw/unique totals at a simulated AADS.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_table1.py --benchmark-only
"""

from repro.experiments.table1 import run

from .conftest import run_and_verify


def test_table1(benchmark):
    run_and_verify(benchmark, run)
