"""Benchmark: regenerate Figure 3 — the 7-month instability density matrix.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure3.py --benchmark-only
"""

from repro.experiments.figure3 import run

from .conftest import run_and_verify


def test_figure3(benchmark):
    run_and_verify(benchmark, run)
