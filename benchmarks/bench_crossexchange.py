"""Benchmark: the cross-exchange consistency claim (section 5).

Prints the per-exchange classification profiles and asserts their
similarity.  Run with::

    pytest benchmarks/bench_crossexchange.py --benchmark-only
"""

from repro.experiments.crossexchange import run

from .conftest import run_and_verify


def test_crossexchange(benchmark):
    run_and_verify(benchmark, run)
