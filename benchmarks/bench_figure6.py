"""Benchmark: regenerate Figure 6 — AS contribution vs routing-table share.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure6.py --benchmark-only
"""

from repro.experiments.figure6 import run

from .conftest import run_and_verify


def test_figure6(benchmark):
    run_and_verify(benchmark, run)
