"""The speedup-bar skip policy shared by the benchmark harnesses.

Both timed 4-worker bars — the campaign runner's >= 1.7x and the
parallel simulator day's >= 2.5x — are enforced only when the machine
can physically pass them (>= 4 usable CPUs).  Historically ``--no-bar``
and ``--smoke`` also skipped them *silently*, recording an honest
``bar_skipped_reason`` in the JSON but still exiting 0 — which let a
CI lane keep "passing" on a big box with the bar quietly off.

:func:`bar_skip_failure` turns that into policy: skipping a 4-worker
bar on a >= 4-CPU machine is a hard failure unless the run is
explicitly waived with ``REPRO_ALLOW_BAR_SKIP=1`` (what the CI quick
lanes set — the waiver is visible in the workflow file, not buried in
a JSON artifact).  Machines with fewer CPUs keep the old behavior:
the bar cannot apply, so skipping it is legitimate and free.

``REPRO_BENCH_CPUS`` injects the CPU count (tests use it to exercise
both sides of the policy on any machine).
"""

from __future__ import annotations

import os
from typing import Mapping, Optional

__all__ = [
    "ALLOW_ENV",
    "CPUS_ENV",
    "MIN_BAR_CPUS",
    "available_cpus",
    "bar_skip_failure",
]

#: Set to any non-empty value to waive the hard-failure policy.
ALLOW_ENV = "REPRO_ALLOW_BAR_SKIP"
#: Overrides the detected CPU count (testing the policy itself).
CPUS_ENV = "REPRO_BENCH_CPUS"
#: The 4-worker bars need at least this many usable CPUs to apply.
MIN_BAR_CPUS = 4


def available_cpus(environ: Optional[Mapping[str, str]] = None) -> int:
    """CPUs this process may actually use (affinity-aware), unless
    ``REPRO_BENCH_CPUS`` injects a count."""
    environ = os.environ if environ is None else environ
    injected = environ.get(CPUS_ENV)
    if injected:
        return int(injected)
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def bar_skip_failure(
    bar_name: str,
    skip_reason: Optional[str],
    cpus: int,
    environ: Optional[Mapping[str, str]] = None,
    min_cpus: int = MIN_BAR_CPUS,
) -> Optional[str]:
    """The hard-failure message for an illegitimate bar skip, or None.

    ``skip_reason`` is the harness's ``bar_skipped_reason`` (None means
    the bar was enforced — never a failure).  A skip is legitimate when
    the machine has fewer than ``min_cpus`` usable CPUs, or when
    ``REPRO_ALLOW_BAR_SKIP`` is set; anything else is a silent
    enforcement hole and fails the bench.  ``min_cpus`` defaults to
    the 4-worker threshold; single-process bars (e.g. generation
    throughput, the table_dump no-regression ratio) pass ``1`` — any
    machine can run them, so a skip is never legitimate on CPU-count
    grounds.
    """
    if skip_reason is None:
        return None
    environ = os.environ if environ is None else environ
    if cpus < min_cpus:
        return None
    if environ.get(ALLOW_ENV):
        return None
    return (
        f"{bar_name} bar skipped ({skip_reason}) on a {cpus}-CPU "
        f"machine; with >= {min_cpus} CPUs the bar must be "
        f"enforced (set {ALLOW_ENV}=1 to waive explicitly)"
    )
