"""Benchmark: regenerate Figure 4 — a representative week of raw updates.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure4.py --benchmark-only
"""

from repro.experiments.figure4 import run

from .conftest import run_and_verify


def test_figure4(benchmark):
    run_and_verify(benchmark, run)
