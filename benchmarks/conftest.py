"""Shared benchmark plumbing.

Each benchmark runs its experiment once through pytest-benchmark's
pedantic mode (the experiments are seconds-to-minutes of simulation;
statistical repetition would add nothing but wall-clock), prints the
experiment's full report — the same rows/series the paper presents —
and asserts every paper-expectation check passes.
"""

from __future__ import annotations

import pytest


def run_and_verify(benchmark, runner, **kwargs):
    """Benchmark ``runner`` once, print its report, assert its checks."""
    result = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failures = {
        name: (result.measurements[name], result.expectations[name])
        for name, ok in result.all_checks().items()
        if not ok
    }
    assert not failures, f"paper-expectation mismatches: {failures}"
    return result
