"""Benchmark: regenerate Figure 1 — the five measured exchange points.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure1.py --benchmark-only
"""

from repro.experiments.figure1 import run

from .conftest import run_and_verify


def test_figure1(benchmark):
    run_and_verify(benchmark, run)
