"""Microbenchmarks of the hot data structures and codecs.

Unlike the per-figure benchmarks (which run once and verify shape
checks), these use pytest-benchmark's statistical repetition to track
the throughput of the primitives every experiment leans on: radix
longest-prefix match, the streaming classifier, the RFC 4271 codec,
the damping penalty update, and the BGP decision process.

Run with::

    pytest benchmarks/bench_micro.py --benchmark-only
"""

import io
import random

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.damping import RouteFlapDamper
from repro.bgp.messages import UpdateMessage
from repro.bgp.rib import Route, best_route
from repro.bgp.wire import decode_message, encode_message
from repro.collector.record import UpdateKind, UpdateRecord
from repro.core.classifier import StreamClassifier
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree


def _prefix_pool(n, seed=1):
    rng = random.Random(seed)
    pool = []
    for _ in range(n):
        length = rng.choice((8, 12, 16, 20, 24))
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        pool.append(Prefix(rng.randrange(0, 1 << 32) & mask, length))
    return pool


def test_radix_longest_prefix_match(benchmark):
    tree = RadixTree()
    for prefix in _prefix_pool(10000, seed=2):
        tree[prefix] = prefix.network
    queries = _prefix_pool(1000, seed=3)

    def run():
        hits = 0
        for query in queries:
            if tree.lookup_best(query) is not None:
                hits += 1
        return hits

    benchmark(run)


def test_radix_insert_delete(benchmark):
    pool = _prefix_pool(2000, seed=4)

    def run():
        tree = RadixTree()
        for prefix in pool:
            tree[prefix] = 1
        for prefix in pool:
            tree.delete(prefix)
        return len(tree)

    assert benchmark(run) == 0


def test_classifier_throughput(benchmark):
    pool = _prefix_pool(500, seed=5)
    rng = random.Random(6)
    attrs = PathAttributes(as_path=AsPath((701, 3561)), next_hop=1)
    records = []
    for i in range(10000):
        prefix = rng.choice(pool)
        if rng.random() < 0.5:
            records.append(
                UpdateRecord(float(i), 1, 701, prefix,
                             UpdateKind.ANNOUNCE, attrs)
            )
        else:
            records.append(
                UpdateRecord(float(i), 1, 701, prefix, UpdateKind.WITHDRAW)
            )

    def run():
        classifier = StreamClassifier()
        for record in records:
            classifier.feed(record)
        return classifier.tracked_routes()

    benchmark(run)


def test_wire_codec_roundtrip(benchmark):
    message = UpdateMessage(
        announced=tuple(_prefix_pool(20, seed=7)[:20]),
        attributes=PathAttributes(
            as_path=AsPath((701, 1239, 3561)), next_hop=0x0A000001,
            med=10, communities=frozenset({1, 2, 3}),
        ),
    )

    def run():
        data = encode_message(message)
        decoded, _ = decode_message(data)
        return len(data)

    benchmark(run)


def test_damping_penalty_updates(benchmark):
    pool = _prefix_pool(200, seed=8)
    rng = random.Random(9)
    events = [
        (rng.choice(pool), rng.uniform(0, 86400.0)) for _ in range(5000)
    ]
    events.sort(key=lambda e: e[1])

    def run():
        damper = RouteFlapDamper()
        for prefix, when in events:
            damper.on_withdrawal(prefix, 1, when)
        return damper.total_flaps

    benchmark(run)


def test_decision_process(benchmark):
    rng = random.Random(10)
    prefix = Prefix.parse("10.0.0.0/8")
    candidates = [
        Route(
            prefix,
            PathAttributes(
                as_path=AsPath(
                    tuple(
                        rng.randrange(1, 65000)
                        for _ in range(rng.randrange(1, 6))
                    )
                ),
                next_hop=i,
                med=rng.choice((None, 10, 20)),
            ),
            i + 1,
        )
        for i in range(30)
    ]

    def run():
        return best_route(candidates)

    benchmark(run)
