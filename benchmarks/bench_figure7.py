"""Benchmark: regenerate Figure 7 — cumulative Prefix+AS update distributions.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure7.py --benchmark-only
"""

from repro.experiments.figure7 import run

from .conftest import run_and_verify


def test_figure7(benchmark):
    run_and_verify(benchmark, run)
