#!/usr/bin/env python3
"""Differential simulator benchmark: calendar-queue vs reference heap,
plus the parallel multi-exchange probe.

The scenario bodies live in :mod:`repro.sim.scenarios` (they are the
same workloads ``repro.sim.simulate`` runs); this harness times them
on both schedulers with identical seeds:

- **sync-population** — the paper's §4.2 shape: a large population of
  unjittered 30-second interval timers in a handful of phase cohorts
  (so hundreds fire at the same instant), a jittered minority, a
  hold-timer cohort whose timeout is cancelled and re-scheduled on
  every keepalive (the BGP hold-timer reset pattern — all dead
  entries), and periodic stop/start churn.  This is the headline
  scenario: the calendar queue drains each shared instant in one
  bucket scan, re-arms by handle reuse, and compacts the dead, where
  the heap pays Python-level ``heappush``/``heappop`` pairs for every
  event — including every entry that was already cancelled.
- **flap-storm** — the full router mesh cascade
  (:class:`repro.sim.flapstorm.FlapStormScenario`): CPU queues,
  sessions, MRAI batching, and lots of cancelled/stale work.  Dense
  irregular timestamps (mostly singleton buckets) — the adaptive
  scheduler must trip to its heap fallback and stay >= 1x here.
- **table-dump** — a hub router repeatedly dumping its table to peers
  over ``wire=True`` links through forced session bounces: the
  memoized codec's target (identical UPDATE bytes re-sent per peer per
  cycle).

For every scenario the two engines must produce *identical* digests
(event counts, final clocks, and full route/firing state) — the
timings are only reported once equivalence holds.  The acceptance
bars: >= 5x events/sec on sync-population, >= 1x on flap-storm,
>= 0.95x (no regression) on table-dump.  The scenario bars are
single-process, so skipping them (``--smoke`` / ``--no-bar``) is a
hard failure on any machine unless waived with
``REPRO_ALLOW_BAR_SKIP=1`` (see ``benchmarks/bar_policy.py``).

The **parallel probe** runs the partitioned multi-exchange day
(:mod:`repro.sim.parallel`): always a 2-worker digest-parity check
against the single-engine oracle at smoke scale; on boxes with >= 4
CPUs (full mode) also the timed 5-exchange 90-provider day, bar
>= 2.5x over the single-engine calendar run.  Below 4 CPUs the timing
bar is skipped and ``bar_skipped_reason`` records why; on >= 4 CPUs a
skip (``--smoke`` / ``--no-bar``) is a hard failure unless waived
with ``REPRO_ALLOW_BAR_SKIP=1`` (see ``benchmarks/bar_policy.py``).

Run:  PYTHONPATH=src python benchmarks/bench_sim.py [--smoke]
      PYTHONPATH=src python benchmarks/run_bench.py --sim
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from pathlib import Path

from repro.sim.engine import Engine
from repro.sim.parallel import ParallelDriver
from repro.sim.refengine import ReferenceEngine
from repro.sim.scenarios import (
    day_config,
    run_exchange_day,
    scenario_flap_storm,
    scenario_sync_population,
    scenario_table_dump,
)

#: The differential single-engine scenarios and their speedup bars.
#: table_dump is a no-regression bar: the calendar queue has no
#: structural edge on its sparse irregular timeline, so holding
#: >= 0.95x of the heap is the claim (it sat at 0.99x unenforced).
SCENARIOS = (
    ("sync_population", scenario_sync_population, 5.0),
    ("flap_storm", scenario_flap_storm, 1.0),
    ("table_dump", scenario_table_dump, 0.95),
)

try:
    from bar_policy import available_cpus, bar_skip_failure
except ImportError:  # invoked as a package module
    from benchmarks.bar_policy import available_cpus, bar_skip_failure

#: Minimum CPUs for the timed parallel bar, and its speedup target.
_PARALLEL_MIN_CPUS = 4
_PARALLEL_BAR = 2.5
_PARALLEL_WORKERS = 4


def _available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    return available_cpus()


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def _time_scenario(fn, smoke: bool, repeats: int):
    """Run the scenario on both engines, repeats interleaved (so slow
    machine drift hits both sides equally); best-of per engine."""
    results = {}
    for _ in range(repeats):
        for engine_cls in (ReferenceEngine, Engine):
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                run_events, run_digest = fn(engine_cls, smoke)
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            prior = results.get(engine_cls)
            if prior is None:
                results[engine_cls] = [elapsed, run_events, run_digest]
                continue
            if (run_events, run_digest) != tuple(prior[1:]):
                raise SystemExit(
                    f"{fn.__name__} is not deterministic across repeats"
                )
            prior[0] = min(prior[0], elapsed)
    return results[ReferenceEngine], results[Engine]


def _timed(fn, *args):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn(*args)
        return result, time.perf_counter() - start
    finally:
        gc.enable()


def _parallel_probe(smoke: bool) -> dict:
    """The partitioned-day section: digest parity always, the timed
    4-worker bar only with enough CPUs and in full mode."""
    cpus = _available_cpus()
    probe: dict = {"cpus": cpus}

    # Parity: 2 real worker processes vs the single-engine oracle at
    # smoke scale (cheap enough to run everywhere, every time).
    config = day_config(smoke=True)
    (events, digest), single_seconds = _timed(
        run_exchange_day, Engine, config
    )
    with ParallelDriver(config, workers=2) as driver:
        driver.run()
        result = driver.finish()
    probe["parity"] = {
        "workers": result.workers,
        "windows": result.windows,
        "events": result.events,
        "single_seconds": round(single_seconds, 4),
        "digest": result.digest,
        "digests_identical": (
            result.digest == digest and result.events == events
        ),
    }

    timed_bar = not smoke and cpus >= _PARALLEL_MIN_CPUS
    if not timed_bar:
        probe["bar_enforced"] = False
        probe["bar_skipped_reason"] = (
            "smoke mode (digest parity only)"
            if smoke
            else f"{cpus} CPU(s) < {_PARALLEL_MIN_CPUS} required "
                 f"for the timed {_PARALLEL_BAR}x bar"
        )
        return probe

    full = day_config()
    (f_events, f_digest), f_single = _timed(run_exchange_day, Engine, full)
    workers = min(_PARALLEL_WORKERS, cpus)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        with ParallelDriver(full, workers=workers) as driver:
            driver.run()
            f_result = driver.finish()
        f_parallel = time.perf_counter() - start
    finally:
        gc.enable()
    speedup = f_single / f_parallel if f_parallel else float("inf")
    probe["day"] = {
        "workers": workers,
        "windows": f_result.windows,
        "events": f_result.events,
        "single_seconds": round(f_single, 4),
        "parallel_seconds": round(f_parallel, 4),
        "speedup": round(speedup, 2),
        "digests_identical": (
            f_result.digest == f_digest and f_result.events == f_events
        ),
    }
    probe["bar_enforced"] = True
    probe["bar"] = f">= {_PARALLEL_BAR}x on the 5-exchange day"
    return probe


def run_sim_bench(args) -> None:
    smoke = bool(getattr(args, "smoke", False))
    repeats = 1 if smoke else args.repeats
    mode = "smoke (digest check only)" if smoke else f"best of {repeats}"
    print(f"Simulator benchmark: calendar queue vs reference heap ({mode})")

    scenarios = {}
    all_identical = True
    for name, fn, bar in SCENARIOS:
        (
            (ref_seconds, ref_events, ref_digest),
            (new_seconds, new_events, new_digest),
        ) = _time_scenario(fn, smoke, repeats)
        identical = (ref_events, ref_digest) == (new_events, new_digest)
        all_identical = all_identical and identical
        speedup = ref_seconds / new_seconds if new_seconds else float("inf")
        scenarios[name] = {
            "events": new_events,
            "reference_seconds": round(ref_seconds, 4),
            "engine_seconds": round(new_seconds, 4),
            "reference_events_per_sec": round(ref_events / ref_seconds),
            "engine_events_per_sec": round(new_events / new_seconds),
            "speedup": round(speedup, 2),
            "speedup_bar": bar,
            "digest": new_digest,
            "digests_identical": identical,
        }
        status = "identical" if identical else "DIGEST MISMATCH"
        print(
            f"  {name}: {new_events:,} events  "
            f"heap {ref_seconds:.3f}s -> calendar {new_seconds:.3f}s  "
            f"({speedup:.2f}x, digests {status})"
        )
        if not identical:
            print(f"    reference: {ref_events} events, {ref_digest}")
            print(f"    calendar:  {new_events} events, {new_digest}")

    parallel = _parallel_probe(smoke)
    parity = parallel["parity"]
    all_identical = all_identical and parity["digests_identical"]
    print(
        f"  parallel parity: {parity['events']:,} events over "
        f"{parity['windows']} windows, {parity['workers']} workers "
        f"({'identical' if parity['digests_identical'] else 'MISMATCH'})"
    )
    if "day" in parallel:
        day = parallel["day"]
        all_identical = all_identical and day["digests_identical"]
        print(
            f"  parallel day: single {day['single_seconds']:.1f}s -> "
            f"{day['workers']} workers {day['parallel_seconds']:.1f}s "
            f"({day['speedup']:.2f}x)"
        )
    else:
        print(f"  parallel day bar: {parallel['bar_skipped_reason']}")

    sync_speedup = scenarios["sync_population"]["speedup"]
    bar_enforced = not smoke and not getattr(args, "no_bar", False)
    payload = {
        "scenarios": scenarios,
        "parallel": parallel,
        "digests_identical": all_identical,
        "speedup_sync_population": sync_speedup,
        "repeats": repeats,
        "timing": "best (minimum) of repeats per engine",
        "bar": ">= 5x events/sec on sync_population, >= 1x on "
               "flap_storm, >= 0.95x on table_dump, digests identical "
               "on all scenarios and the parallel parity check",
        "bar_enforced": bar_enforced,
        "smoke": smoke,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {args.output}")
    if not all_identical:
        raise SystemExit("engines disagree — see digests above")
    failures = []
    skip_failure = bar_skip_failure(
        f"parallel {_PARALLEL_BAR}x @ {_PARALLEL_WORKERS} workers",
        parallel.get("bar_skipped_reason"),
        parallel["cpus"],
    )
    if skip_failure:
        failures.append(skip_failure)
    if not bar_enforced:
        # The single-engine scenario bars run in one process — any box
        # can enforce them, so a skip needs the explicit waiver.
        scenario_skip_reason = "--smoke" if smoke else "--no-bar"
        scenario_skip = bar_skip_failure(
            "single-engine scenario speedups",
            scenario_skip_reason,
            parallel["cpus"],
            min_cpus=1,
        )
        if scenario_skip:
            failures.append(scenario_skip)
    if bar_enforced:
        for name, entry in scenarios.items():
            bar = entry["speedup_bar"]
            if bar is not None and entry["speedup"] < bar:
                failures.append(
                    f"{name} speedup {entry['speedup']:.2f}x below "
                    f"the {bar}x bar"
                )
        day = parallel.get("day")
        if day is not None and day["speedup"] < _PARALLEL_BAR:
            failures.append(
                f"parallel day speedup {day['speedup']:.2f}x below "
                f"the {_PARALLEL_BAR}x bar"
            )
    if failures:
        raise SystemExit("; ".join(failures))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes, one repeat, digest check only (no timing bar)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--no-bar", action="store_true",
        help="record numbers without enforcing the speedup bars",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args()
    if args.output is None:
        root = Path(__file__).resolve().parent.parent
        args.output = str(root / "BENCH_sim.json")
    run_sim_bench(args)


if __name__ == "__main__":
    main()
