#!/usr/bin/env python3
"""Differential simulator benchmark: calendar-queue vs reference heap.

Three scenarios, each run on both schedulers with identical seeds:

- **sync-population** — the paper's §4.2 shape: a large population of
  unjittered 30-second interval timers in a handful of phase cohorts
  (so hundreds fire at the same instant), a jittered minority, a
  hold-timer cohort whose timeout is cancelled and re-scheduled on
  every keepalive (the BGP hold-timer reset pattern — all dead
  entries), and periodic stop/start churn.  This is the headline
  scenario: the calendar queue drains each shared instant in one
  bucket scan, re-arms by handle reuse, and compacts the dead, where
  the heap pays Python-level ``heappush``/``heappop`` pairs for every
  event — including every entry that was already cancelled.
- **flap-storm** — the full router mesh cascade
  (:class:`repro.sim.flapstorm.FlapStormScenario`): CPU queues,
  sessions, MRAI batching, and lots of cancelled/stale work.
- **table-dump** — a hub router repeatedly dumping its table to peers
  over ``wire=True`` links through forced session bounces: the
  memoized codec's target (identical UPDATE bytes re-sent per peer per
  cycle).

For every scenario the two engines must produce *identical* digests
(event counts, final clocks, and full route/firing state) — the
timings are only reported once equivalence holds.  The acceptance bar
is >= 5x events/sec on sync-population.

Run:  PYTHONPATH=src python benchmarks/bench_sim.py [--smoke]
      PYTHONPATH=src python benchmarks/run_bench.py --sim
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import random
import time
from pathlib import Path

from repro.core.classifier import route_state_digest
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.flapstorm import FlapStormScenario
from repro.sim.link import Link
from repro.sim.refengine import ReferenceEngine
from repro.sim.router import Router, connect
from repro.sim.timers import IntervalTimer

#: Scenario sizes: (full, smoke).
_SYNC_TIMERS = (5000, 160)
_SYNC_HOLD_ACTORS = (9000, 80)
_SYNC_DURATION = (1200.0, 300.0)
_STORM_SIZE = ((8, 30, 150, 240.0), (4, 10, 40, 120.0))
_DUMP_SIZE = ((600, 12, 6), (120, 4, 2))

_PHASE_COHORTS = 8
_JITTERED_FRACTION = 0.025


def _noop() -> None:
    """The measured work is the timer machinery itself (fire_count)."""


class _HoldTimerActor:
    """The BGP hold-timer reset pattern: every keepalive cancels the
    pending timeout and schedules a fresh one — in steady state the
    timeout never fires and the queue fills with dead entries."""

    __slots__ = ("engine", "hold_time", "expired", "_pending", "_expire_cb")

    def __init__(self, engine, hold_time: float) -> None:
        self.engine = engine
        self.hold_time = hold_time
        self.expired = 0
        self._pending = None
        self._expire_cb = self._expire

    def keepalive(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
        self._pending = self.engine.schedule(self.hold_time, self._expire_cb)

    def _expire(self) -> None:
        self.expired += 1


def _digest(*parts) -> str:
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def _router_state(router: Router):
    """Adj-RIB-In entries of one router in route_state_digest form."""
    adj_in = router.loc_rib.adj_in
    return [
        ((peer, prefix.network, prefix.length), True, True, attrs)
        for peer in adj_in.peers()
        for prefix, attrs in adj_in.routes_from(peer).items()
    ]


# ---------------------------------------------------------------------------
# scenarios — each takes an engine class, returns (events, digest)
# ---------------------------------------------------------------------------

def scenario_sync_population(engine_cls, smoke: bool):
    size = _SYNC_TIMERS[smoke]
    n_actors = _SYNC_HOLD_ACTORS[smoke]
    duration = _SYNC_DURATION[smoke]
    engine = engine_cls()
    timers = []
    n_jittered = int(size * _JITTERED_FRACTION)
    for i in range(size):
        if i < n_jittered:
            timer = IntervalTimer(
                engine, 30.0, _noop, jitter=0.25, rng=random.Random(1000 + i)
            )
        else:
            # Phase cohorts: hundreds of timers share each firing
            # instant — the unjittered vendor-timer population.
            timer = IntervalTimer(
                engine, 30.0, _noop, phase=float(i % _PHASE_COHORTS)
            )
        timer.start()
        timers.append(timer)

    # Hold-timer cohort: phase-aligned keepalives, each reset leaving
    # a dead 90 s timeout behind (the lazy-cancellation workload).
    actors = []
    for i in range(n_actors):
        actor = _HoldTimerActor(engine, hold_time=600.0)
        timer = IntervalTimer(
            engine, 30.0, actor.keepalive, phase=float(i % _PHASE_COHORTS)
        )
        timer.start()
        timers.append(timer)
        actors.append(actor)

    # Churn: every 300 s stop a seeded slice of the population and
    # restart it 60 s later, leaving cancelled handles in the queue
    # (the lazy-cancellation workload).
    churn_rng = random.Random(7)

    def churn():
        victims = churn_rng.sample(range(size), size // 10)
        for index in victims:
            timers[index].stop()
        engine.schedule(60.0, restart, tuple(victims))
        if engine.now + 300.0 <= duration:
            engine.schedule(300.0, churn)

    def restart(victims):
        for index in victims:
            timers[index].start()

    engine.schedule(300.0, churn)
    engine.run_until(duration)
    digest = _digest(
        engine.events_processed,
        round(engine.now, 9),
        tuple(t.fire_count for t in timers),
        tuple(a.expired for a in actors),
    )
    return engine.events_processed, digest


def scenario_flap_storm(engine_cls, smoke: bool):
    n_routers, per_router, flaps, observe = _STORM_SIZE[smoke]
    engine = engine_cls()
    scenario = FlapStormScenario(
        n_routers=n_routers,
        prefixes_per_router=per_router,
        seed=7,
        engine=engine,
    )
    result = scenario.run_storm(
        flaps=flaps, over_seconds=10.0, observe_for=observe
    )
    rib_digests = tuple(
        route_state_digest(_router_state(router))
        for router in scenario.routers
    )
    digest = _digest(
        engine.events_processed,
        round(engine.now, 9),
        result.session_drops,
        result.total_updates_sent,
        result.crashes,
        tuple(round(t, 9) for t in result.drop_times),
        rib_digests,
    )
    return engine.events_processed, digest


def scenario_table_dump(engine_cls, smoke: bool):
    n_prefixes, n_peers, bounces = _DUMP_SIZE[smoke]
    engine = engine_cls()
    hub = Router(engine, asn=100, router_id=(10 << 24) + 1)
    base = 20 * (1 << 24)
    for i in range(n_prefixes):
        hub.originate(Prefix(base + i * 256, 24))
    peers, links = [], []
    for i in range(n_peers):
        peer = Router(engine, asn=200 + i, router_id=(10 << 24) + 100 + i)
        link = Link(engine, delay=0.01, wire=True)
        connect(hub, peer, link=link)
        peers.append(peer)
        links.append(link)
    engine.run_until(120.0)
    # Bounce every session repeatedly: each re-establishment re-dumps
    # the identical table over the wire (memoized-encode territory).
    for cycle in range(bounces):
        at = engine.now
        for link in links:
            engine.schedule_at(at + 1.0, link.go_down)
            engine.schedule_at(at + 3.0, link.go_up)
        engine.run_until(at + 120.0)
    digest = _digest(
        engine.events_processed,
        round(engine.now, 9),
        tuple(route_state_digest(_router_state(peer)) for peer in peers),
        tuple(link.bytes_carried for link in links),
        tuple(link.messages_delivered for link in links),
        tuple(link.messages_lost for link in links),
        hub.updates_sent,
        hub.suppressed_outputs,
    )
    return engine.events_processed, digest


SCENARIOS = (
    ("sync_population", scenario_sync_population),
    ("flap_storm", scenario_flap_storm),
    ("table_dump", scenario_table_dump),
)


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def _time_scenario(fn, smoke: bool, repeats: int):
    """Run the scenario on both engines, repeats interleaved (so slow
    machine drift hits both sides equally); best-of per engine."""
    results = {}
    for _ in range(repeats):
        for engine_cls in (ReferenceEngine, Engine):
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                run_events, run_digest = fn(engine_cls, smoke)
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            prior = results.get(engine_cls)
            if prior is None:
                results[engine_cls] = [elapsed, run_events, run_digest]
                continue
            if (run_events, run_digest) != tuple(prior[1:]):
                raise SystemExit(
                    f"{fn.__name__} is not deterministic across repeats"
                )
            prior[0] = min(prior[0], elapsed)
    return results[ReferenceEngine], results[Engine]


def run_sim_bench(args) -> None:
    smoke = bool(getattr(args, "smoke", False))
    repeats = 1 if smoke else args.repeats
    mode = "smoke (digest check only)" if smoke else f"best of {repeats}"
    print(f"Simulator benchmark: calendar queue vs reference heap ({mode})")

    scenarios = {}
    all_identical = True
    for name, fn in SCENARIOS:
        (
            (ref_seconds, ref_events, ref_digest),
            (new_seconds, new_events, new_digest),
        ) = _time_scenario(fn, smoke, repeats)
        identical = (ref_events, ref_digest) == (new_events, new_digest)
        all_identical = all_identical and identical
        speedup = ref_seconds / new_seconds if new_seconds else float("inf")
        scenarios[name] = {
            "events": new_events,
            "reference_seconds": round(ref_seconds, 4),
            "engine_seconds": round(new_seconds, 4),
            "reference_events_per_sec": round(ref_events / ref_seconds),
            "engine_events_per_sec": round(new_events / new_seconds),
            "speedup": round(speedup, 2),
            "digest": new_digest,
            "digests_identical": identical,
        }
        status = "identical" if identical else "DIGEST MISMATCH"
        print(
            f"  {name}: {new_events:,} events  "
            f"heap {ref_seconds:.3f}s -> calendar {new_seconds:.3f}s  "
            f"({speedup:.2f}x, digests {status})"
        )
        if not identical:
            print(f"    reference: {ref_events} events, {ref_digest}")
            print(f"    calendar:  {new_events} events, {new_digest}")

    sync_speedup = scenarios["sync_population"]["speedup"]
    bar_enforced = not smoke and not getattr(args, "no_bar", False)
    payload = {
        "scenarios": scenarios,
        "digests_identical": all_identical,
        "speedup_sync_population": sync_speedup,
        "repeats": repeats,
        "timing": "best (minimum) of repeats per engine",
        "bar": ">= 5x events/sec on sync_population, digests identical "
               "on all scenarios",
        "bar_enforced": bar_enforced,
        "smoke": smoke,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {args.output}")
    if not all_identical:
        raise SystemExit("old and new engines disagree — see digests above")
    if bar_enforced and sync_speedup < 5.0:
        raise SystemExit(
            f"sync_population speedup {sync_speedup:.2f}x below the 5x bar"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes, one repeat, digest check only (no timing bar)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--no-bar", action="store_true",
        help="record numbers without enforcing the speedup bar",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args()
    if args.output is None:
        root = Path(__file__).resolve().parent.parent
        args.output = str(root / "BENCH_sim.json")
    run_sim_bench(args)


if __name__ == "__main__":
    main()
