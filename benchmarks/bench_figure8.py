"""Benchmark: regenerate Figure 8 — inter-arrival histograms and the 30/60s periodicity.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure8.py --benchmark-only
"""

from repro.experiments.figure8 import run

from .conftest import run_and_verify


def test_figure8(benchmark):
    run_and_verify(benchmark, run)
