"""Benchmark: regenerate Section 4 — headline pathology magnitudes.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_pathology.py --benchmark-only
"""

from repro.experiments.pathology import run

from .conftest import run_and_verify


def test_pathology(benchmark):
    run_and_verify(benchmark, run)
