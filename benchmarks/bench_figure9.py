"""Benchmark: regenerate Figure 9 — proportion of routes affected per day.

Prints the reproduced rows/series and asserts the shape checks against
the paper's reported values.  Run with::

    pytest benchmarks/bench_figure9.py --benchmark-only
"""

from repro.experiments.figure9 import run

from .conftest import run_and_verify


def test_figure9(benchmark):
    run_and_verify(benchmark, run)
