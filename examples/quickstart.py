#!/usr/bin/env python3
"""Quickstart: classify a BGP update stream with the paper's taxonomy.

This walks the library's central loop in miniature:

1. build a tiny simulated exchange (two providers + a logging route
   server),
2. make one provider's customer route flap,
3. classify the logged updates with the streaming classifier,
4. print the taxonomy breakdown — the same counting behind every
   figure in the paper.

Run:  python examples/quickstart.py
"""

from repro.collector.log import MemoryLog
from repro.core.classifier import classify
from repro.core.instability import CategoryCounts
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.router import Router, connect
from repro.sim.routeserver import RouteServer


def main() -> None:
    engine = Engine()
    sink = MemoryLog()

    # A stateful provider, a *stateless* provider (the paper's problem
    # vendor), and the measuring route server.
    good = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
    legacy = Router(
        engine, asn=200, router_id=2, mrai_interval=30.0,
        stateless_bgp=True, mrai_jitter=0.0,
    )
    server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
    connect(good, legacy)
    connect(legacy, server)
    connect(good, server)
    engine.run_until(60.0)  # let sessions establish

    # A customer of the good provider flaps its circuit five times.
    customer_prefix = Prefix.parse("192.42.113.0/24")
    good.originate(customer_prefix)
    engine.run_until(120.0)
    sink.clear()  # measure steady state, as the paper did
    for i in range(5):
        engine.schedule(i * 90.0, good.flap_origin, customer_prefix, 10.0)
    engine.run_until(700.0)

    # Classify everything the route server observed.
    counts = CategoryCounts()
    print("Updates observed at the route server:")
    for update in classify(sink.sorted_by_time()):
        counts.add(update)
        print(
            f"  t={update.time:7.2f}s  AS{update.peer_asn}  "
            f"{update.record.kind.name:8s} {update.prefix}  "
            f"-> {update.category.name}"
        )
    print()
    print("Taxonomy breakdown:")
    for name, value in counts.as_dict().items():
        if value:
            print(f"  {name:15s} {value}")
    print()
    print(f"instability events:   {counts.instability}")
    print(f"pathological events:  {counts.pathological}")
    print(f"pathological share:   {counts.pathological_fraction:.0%}")
    print()
    print(
        "The stateless provider (AS200) forwards the flaps and also "
        "withdraws routes it never announced - the paper's WWDup "
        "pathology, visible above."
    )


if __name__ == "__main__":
    main()
