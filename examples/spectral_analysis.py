#!/usr/bin/env python3
"""Spectral analysis of a simulated instability campaign (Figure 5).

Generates two months of hourly update aggregates with the calibrated
statistical generator, log-detrends them as the paper does (following
Bloomfield), and runs all three of the paper's estimators — the FFT
correlogram, Burg maximum-entropy estimation, and singular spectrum
analysis — printing the frequencies each finds.  The daily (24 h) and
weekly (168 h) lines should appear in all three, cross-validating the
methods exactly as Figure 5 argues.

Run:  python examples/spectral_analysis.py
"""

import numpy as np

from repro.analysis.mem import mem_psd
from repro.analysis.spectral import correlogram_psd, dominant_periods
from repro.analysis.ssa import significant_frequencies
from repro.analysis.timeseries import aggregate_bins, log_detrend
from repro.core.taxonomy import INSTABILITY_CATEGORIES
from repro.workloads.generator import TraceGenerator


def main() -> None:
    print("Generating August-September hourly instability aggregates...")
    generator = TraceGenerator(seed=3)
    days = range(153, 214)
    series = generator.campaign_bin_series(
        days, tuple(INSTABILITY_CATEGORIES)
    )
    combined = np.zeros(len(days) * 144)
    for counts in series.values():
        combined += np.asarray(counts, dtype=float)
    hourly = aggregate_bins(combined, 6)
    print(
        f"  {len(hourly)} hourly samples, mean {hourly.mean():.0f} "
        f"updates/hour, peak {hourly.max():.0f}"
    )
    detrended = log_detrend(hourly)
    print("  log-detrended (Bloomfield-style), residual std "
          f"{detrended.std():.3f}")
    print()

    print("FFT correlogram (Blackman-Tukey) peaks:")
    freqs, power = correlogram_psd(detrended, max_lag=600, n_freq=1024)
    for peak in dominant_periods(freqs, power, n_peaks=5):
        print(f"  period {peak.period:7.1f} h   power {peak.power:8.2f}")
    print()

    print("Maximum-entropy (Burg, order 40) peaks:")
    freqs, power = mem_psd(detrended, order=40)
    for peak in dominant_periods(freqs, power, n_peaks=5):
        print(f"  period {peak.period:7.1f} h   power {peak.power:8.2f}")
    print()

    print("SSA significant frequencies (99% white-noise interval):")
    for component in significant_frequencies(detrended, window=240, seed=3):
        print(
            f"  #{component.index + 1}: period {component.period:7.1f} h  "
            f"variance share {component.variance_share:.3f}"
        )
    print()
    print(
        "The paper's Figure 5: both spectra show significant "
        "frequencies at 24 hours and 7 days; SSA's top five lines are "
        "two weekly and three daily components."
    )


if __name__ == "__main__":
    main()
