#!/usr/bin/env python3
"""Route-flap storms: ignite one, then contain it.

Reproduces §3's storm narrative end-to-end: a mesh of CPU-limited
routers absorbs a burst of customer flaps; the busiest router's
keepalives queue behind update processing; peers' hold timers expire;
sessions drop; re-peering table dumps add load; the failure cascades.
Then the same burst is replayed against routers that prioritize BGP
keepalives — the fix "the latest generation of routers" shipped — and
the storm never ignites.

Run:  python examples/flap_storm.py
"""

from repro.sim.flapstorm import FlapStormScenario
from repro.sim.router import CpuModel


def run_one(keepalive_priority: bool):
    scenario = FlapStormScenario(
        n_routers=5,
        prefixes_per_router=40,
        cpu=CpuModel(per_update=0.1, per_sent_update=0.05,
                     per_dump_route=0.05),
        hold_time=30.0,
        keepalive_priority=keepalive_priority,
        seed=1,
    )
    result = scenario.storm(flaps=600, over_seconds=20.0)
    return scenario, result


def main() -> None:
    print("=== 1968-class CPUs, FIFO keepalive handling ===")
    scenario, storm = run_one(keepalive_priority=False)
    print(f"  session drops during storm: {storm.session_drops}")
    print(f"  updates transmitted:        {storm.total_updates_sent:,}")
    print(f"  router crashes:             {storm.crashes}")
    if storm.drop_times:
        first, last = storm.drop_times[0], storm.drop_times[-1]
        print(
            f"  cascade window:             {last - first:.0f}s "
            f"({len(storm.drop_times)} session losses)"
        )
    print()
    print("=== same burst, keepalives prioritized over updates ===")
    _, calm = run_one(keepalive_priority=True)
    print(f"  session drops during storm: {calm.session_drops}")
    print(f"  updates transmitted:        {calm.total_updates_sent:,}")
    print()
    factor = storm.session_drops / max(1, calm.session_drops)
    print(
        f"Keepalive priority reduced session losses by {factor:.0f}x — "
        "the architectural fix the paper reports vendors shipping."
    )


if __name__ == "__main__":
    main()
