#!/usr/bin/env python3
"""Where the 30/60-second periodicity comes from (§4.2, Figure 8).

Runs three mechanism simulations side by side and shows each one's
inter-arrival signature at the route server:

1. a CSU-misclocked leased line (periodic carrier loss → ~60 s WADups);
2. a misconfigured mutual IGP/BGP redistribution (30 s IGP timer →
   30 s-quantized oscillation);
3. the Floyd–Jacobson self-synchronization of unjittered 30-second
   update timers (coherence → 1.0 without jitter, low with).

Run:  python examples/periodicity_mechanisms.py
"""

from repro.analysis.interarrival import (
    bin_label,
    histogram_proportions,
    interarrival_times,
    timer_bin_mass,
)
from repro.collector.log import MemoryLog
from repro.core.classifier import classify
from repro.net.prefix import Prefix
from repro.sim.engine import Engine
from repro.sim.igp import IgpBgpRedistribution, IgpTable
from repro.sim.link import CsuLink
from repro.sim.router import Router, connect
from repro.sim.routeserver import RouteServer
from repro.sim.sync import SynchronizationStudy


def print_histogram(title, gaps):
    proportions = histogram_proportions(gaps)
    print(f"{title}  ({len(gaps)} gaps)")
    for i, p in enumerate(proportions):
        if p > 0.01:
            bar = "#" * int(p * 50)
            print(f"  {bin_label(i):>4s} {p:5.1%} {bar}")
    print(f"  30s+1m mass: {timer_bin_mass(proportions):.0%}")
    print()


def csu_mechanism():
    engine = Engine()
    sink = MemoryLog()
    provider = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
    customer = Router(engine, asn=300, router_id=3, mrai_interval=5.0)
    csu = CsuLink(engine, up_duration=55.0, down_duration=5.0, noise=0.01)
    customer.add_peer(provider.router_id, provider.asn, csu)
    provider.add_peer(customer.router_id, customer.asn, csu)
    customer.start_session(provider.router_id)
    customer.originate(Prefix.parse("203.0.113.0/24"))
    server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
    connect(provider, server)
    engine.run_until(4 * 3600.0)
    return interarrival_times(classify(sink.sorted_by_time()))


def igp_mechanism():
    engine = Engine()
    sink = MemoryLog()
    router = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
    igp = IgpTable()
    igp.add_native(Prefix.parse("198.51.100.0/24"))
    IgpBgpRedistribution(engine, router, igp, igp_period=30.0).start()
    server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
    connect(router, server)
    engine.run_until(4 * 3600.0)
    return interarrival_times(classify(sink.sorted_by_time()))


def main() -> None:
    print("Mechanism 1: CSU clock drift on a leased line (60 s cycle)")
    print_histogram("  inter-arrival histogram:", csu_mechanism())

    print("Mechanism 2: lossy mutual IGP/BGP redistribution (30 s timer)")
    print_histogram("  inter-arrival histogram:", igp_mechanism())

    print("Mechanism 3: Floyd-Jacobson self-synchronization")
    for jitter in (0.0, 0.25):
        study = SynchronizationStudy(jitter=jitter, seed=7)
        study.advance(24 * 3600.0)
        label = "unjittered" if jitter == 0.0 else f"jitter={jitter}"
        print(
            f"  {label:12s} phase coherence after 24h: "
            f"{study.final_coherence():.2f}"
        )
    print()
    print(
        "Unjittered timers lock into simultaneous transmission "
        "(coherence ~1); the RFC's recommended jitter prevents it - "
        "the paper's conjectured origin of synchronized update bursts."
    )


if __name__ == "__main__":
    main()
