#!/usr/bin/env python3
"""The whole pipeline in one run: generate → archive → decode → analyze.

A miniature of the paper's nine-month study:

1. generate a two-week calibrated campaign with the statistical
   generator,
2. archive it to disk in the internal MRT-flavoured format (the
   Routing Arbiter's collect step),
3. read the archive back and classify it (the decode step),
4. run the headline analyses: taxonomy breakdown, instability density
   summary, inter-arrival timer mass, affected-route fractions.

The run rides the columnar tier end to end — records are materialized,
archived, decoded, classified and aggregated as
:class:`~repro.core.columns.RecordColumns` batches; no per-record
Python object is built anywhere (see docs/PERFORMANCE.md).

Run:  python examples/full_campaign.py  [--days N]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.interarrival import (
    histogram_proportions,
    interarrival_times,
    timer_bin_mass,
)
from repro.analysis.timeseries import bin_records
from repro.collector.log import FileLog
from repro.collector.store import SECONDS_PER_DAY
from repro.core.columns import AttributeTable, ColumnClassifier
from repro.core.instability import CategoryCounts
from repro.core.taxonomy import FINE_GRAINED_CATEGORIES
from repro.workloads.generator import PeerPopulation, TraceGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=14)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    # 1. Generate.  A 4,000-pair population keeps the record tier
    # unbiased without subsampling (see DESIGN.md section 7).
    population = PeerPopulation.synthesize(
        n_peers=30, total_prefixes=4000, seed=args.seed
    )
    generator = TraceGenerator(population=population, seed=args.seed)
    print(f"Generating {args.days} days of fine-grained records...")
    archive = Path(tempfile.mkdtemp()) / "campaign.mrt"

    # 2. Archive (one columnar batch per day — a month never sits in
    # memory at once, and no per-record objects are built).
    table = AttributeTable()
    with FileLog(archive).writer() as writer:
        for day in range(args.days):
            writer.extend_columns(
                generator.day_columns(
                    day, pair_fraction=1.0,
                    categories=FINE_GRAINED_CATEGORIES, attrs=table,
                )
            )
    size_kb = archive.stat().st_size / 1024
    print(f"  archived {writer.count:,} records ({size_kb:,.0f} KiB) "
          f"to {archive}")

    # 3. Decode + classify, columnar.  The classifier carries per-route
    # state across batches, so batched decoding classifies exactly like
    # one continuous stream.
    print("Decoding and classifying the archive...")
    classifier = ColumnClassifier()
    columns = FileLog(archive).read_columns()
    codes, policy = classifier.classify(columns)
    counts = CategoryCounts.from_codes(codes, policy)
    day_index = (columns.time // SECONDS_PER_DAY).astype(np.int64)
    print(f"  {counts.total:,} updates across "
          f"{len(np.unique(day_index))} days")
    print()

    # 4a. Taxonomy breakdown.
    print("Taxonomy breakdown:")
    for name, value in sorted(counts.as_dict().items()):
        if value:
            print(f"  {name:15s} {value:8,d}  ({value / counts.total:6.1%})")
    print(f"  policy fluctuation within AADup: {counts.policy_changes:,}")
    print()

    # 4b. Daily and diurnal structure.
    bins = bin_records(columns, bin_width=600.0,
                       end=args.days * SECONDS_PER_DAY)
    daily = bins.reshape(args.days, 144)
    night = daily[:, 0:36].sum()
    afternoon = daily[:, 72:144].sum()
    print("Temporal structure:")
    print(f"  night (00-06) updates:      {night:,}")
    print(f"  afternoon+evening (12-24):  {afternoon:,} "
          f"({afternoon / max(1, night):.1f}x the night level)")
    weekday = daily[[d for d in range(args.days) if d % 7 < 5]].sum()
    weekend = daily[[d for d in range(args.days) if d % 7 >= 5]].sum()
    if weekend:
        print(f"  weekday vs weekend volume:  {weekday / weekend:.1f}x")
    print()

    # 4c. The 30/60-second signature.
    gaps = interarrival_times((columns, codes))
    mass = timer_bin_mass(histogram_proportions(gaps))
    print(f"Inter-arrival timer mass (30s + 1m bins): {mass:.0%} "
          "(paper: ~half)")
    print()

    # 4d. Affected routes: distinct Prefix+AS pairs per day, from one
    # np.unique over (day, pair) keys.
    total_pairs = population.total_pairs
    pair_keys = np.empty(
        len(columns),
        dtype=[("day", "i8"), ("asn", "u4"), ("net", "u4"), ("plen", "u1")],
    )
    pair_keys["day"] = day_index
    pair_keys["asn"] = columns.peer_asn
    pair_keys["net"] = columns.net
    pair_keys["plen"] = columns.plen
    unique_pairs = np.unique(pair_keys)
    per_day = np.bincount(unique_pairs["day"], minlength=args.days)
    fractions = per_day[np.flatnonzero(per_day)] / total_pairs
    print(
        f"Fine-grained affected-route fraction/day: "
        f"median {np.median(fractions):.0%}, "
        f"range {fractions.min():.0%}-{fractions.max():.0%}"
    )
    print()
    print(f"(archive left at {archive} for `python -m repro`-style replay)")


if __name__ == "__main__":
    main()
