#!/usr/bin/env python3
"""The whole pipeline in one run: generate → archive → classify → analyze.

A miniature of the paper's nine-month study, now expressed as a
single :class:`~repro.campaign.CampaignConfig` plus one
:func:`~repro.campaign.run_campaign` call.  The runner partitions the
campaign into per-day-range shards, runs each shard's generate →
archive → decode/classify → analyze pipeline on the columnar tier
(optionally across a multiprocessing pool — try ``--workers 4``), and
merges the partial results; the merged numbers are bit-identical for
any worker count, and a killed run resumes from its shard manifests
(``--out DIR`` twice).

Run:  python examples/full_campaign.py  [--days N] [--workers W]
"""

import argparse
import time

import numpy as np

from repro.campaign import CampaignConfig, run_campaign
from repro.collector.store import SECONDS_PER_DAY


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=14)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--out", default=None,
        help="shard archive/manifest directory (enables resume)",
    )
    args = parser.parse_args()

    # The whole study in one config: a 4,000-pair population keeps the
    # record tier unbiased without subsampling (DESIGN.md section 7);
    # the fine-grained category set skips the WWDup flood, like the
    # paper's figures 6-8.
    config = CampaignConfig(
        days=args.days,
        seed=args.seed,
        shards=min(args.shards, args.days),
        n_peers=30,
        total_prefixes=4000,
        out=args.out,
        categories=("AADIFF", "WADIFF", "AADUP", "WADUP"),
    )
    print(f"Running a {config.days}-day campaign "
          f"({config.shards} shards, {args.workers} workers)...")
    # run_campaign is clock-free by contract (lint DET102); the demo
    # times it at the display boundary.
    # lint: allow[DET002] -- display-only runtime line
    started = time.time()
    result = run_campaign(config, workers=args.workers, resume=bool(args.out))
    # lint: allow[DET002] -- display-only runtime line
    elapsed = time.time() - started
    counts = result.counts
    print(f"  {result.records:,} records, "
          f"{result.shards_run} shard(s) run + "
          f"{result.shards_loaded} loaded, in {elapsed:.1f}s")
    print()

    # Taxonomy breakdown.
    print("Taxonomy breakdown:")
    for name, value in sorted(counts.as_dict().items()):
        if value:
            print(f"  {name:15s} {value:8,d}  ({value / counts.total:6.1%})")
    print(f"  policy fluctuation within AADup: {counts.policy_changes:,}")
    print()

    # Daily and diurnal structure, from the merged bin series.
    bins_per_day = config.bins_per_day
    daily = result.bin_counts().reshape(config.days, bins_per_day)
    night = daily[:, 0:bins_per_day // 4].sum()
    afternoon = daily[:, bins_per_day // 2:].sum()
    print("Temporal structure:")
    print(f"  night (00-06) updates:      {night:,}")
    print(f"  afternoon+evening (12-24):  {afternoon:,} "
          f"({afternoon / max(1, night):.1f}x the night level)")
    weekday = daily[[d for d in range(config.days) if d % 7 < 5]].sum()
    weekend = daily[[d for d in range(config.days) if d % 7 >= 5]].sum()
    if weekend:
        print(f"  weekday vs weekend volume:  {weekday / weekend:.1f}x")
    print()

    # The 30/60-second signature, from the merged histograms.
    print(f"Inter-arrival timer mass (30s + 1m bins): "
          f"{result.timer_mass:.0%} (paper: ~half)")
    print()

    # Affected routes per day, from the merged per-day pair counts.
    fractions = result.affected_fractions()
    if len(fractions):
        print(
            f"Fine-grained affected-route fraction/day: "
            f"median {np.median(fractions):.0%}, "
            f"range {fractions.min():.0%}-{fractions.max():.0%}"
        )
    if args.out:
        print()
        print(f"(shard archives + manifests in {args.out}; rerun with "
              f"--out to resume a killed campaign)")


if __name__ == "__main__":
    main()
