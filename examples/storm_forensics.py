#!/usr/bin/env python3
"""Storm forensics: detect a route-flap storm from session logs.

Ignites a flap storm in the event simulator (slow-CPU routers, short
hold timers, a burst of customer flaps), collects the session-state
transitions the way a Routing Arbiter collector would, archives them
as RFC 6396 BGP4MP_STATE_CHANGE records, and runs the storm detector
over the re-read archive — the full forensic loop.

Run:  python examples/storm_forensics.py
"""

import io

from repro.analysis.storms import detect_storms, flap_rate_series
from repro.collector.mrt_rfc import (
    SessionEvent,
    read_state_changes,
    write_state_changes,
)
from repro.sim.flapstorm import FlapStormScenario
from repro.sim.router import CpuModel


def main() -> None:
    print("Igniting a storm (5 slow routers, 600 flaps over 20s)...")
    scenario = FlapStormScenario(
        n_routers=5,
        prefixes_per_router=40,
        cpu=CpuModel(per_update=0.1, per_sent_update=0.05,
                     per_dump_route=0.05),
        hold_time=30.0,
        seed=1,
    )
    result = scenario.storm(flaps=600, over_seconds=20.0)
    print(f"  session losses: {result.session_drops}")
    print(f"  updates sent:   {result.total_updates_sent:,}")
    print()

    # Build the session-event log (per-router FSM histories are what a
    # collector peering with each router would have seen).
    events = []
    for router in scenario.routers:
        for peer_id, session in router.sessions.items():
            for transition in session.fsm.history:
                if (
                    transition.before.name == "ESTABLISHED"
                    and transition.after.name != "ESTABLISHED"
                ):
                    events.append(
                        SessionEvent(
                            transition.time, router.router_id,
                            router.asn, "ESTABLISHED", "IDLE",
                        )
                    )

    # Archive and re-read (RFC 6396 BGP4MP_STATE_CHANGE).
    buffer = io.BytesIO()
    count = write_state_changes(buffer, events)
    buffer.seek(0)
    replayed = list(read_state_changes(buffer))
    print(f"Archived and re-read {count} state changes "
          f"({len(buffer.getvalue())} bytes).")
    print()

    # Detect.
    storms = detect_storms(replayed, quiet_gap=120.0)
    print(f"Detected {len(storms)} storm episode(s):")
    for i, storm in enumerate(storms, 1):
        print(
            f"  storm {i}: {storm.losses} session losses across "
            f"{storm.spread} routers over {storm.duration:.0f}s "
            f"(t={storm.start:.0f}..{storm.end:.0f})"
        )
    series = flap_rate_series(replayed, bin_width=60.0)
    peak = max(series) if series else 0
    print(f"  peak loss rate: {peak} sessions/minute")
    print()
    print(
        "The paper (section 3): failing routers are marked down by "
        "peers, withdrawals and re-peering dumps spread the load, and "
        "'several route flap storms in the past year have caused "
        "extended outages for several million network customers.'"
    )


if __name__ == "__main__":
    main()
