#!/usr/bin/env python3
"""Route-flap damping: the cure and its side effect.

§3 of the paper: damping "hold[s] down, or refuse[s] to believe,
updates about routes that exceed certain parameters of instability"
but "can introduce artificial connectivity problems, as 'legitimate'
announcements about a new network may be delayed due to earlier
dampened instability."

This example drives the RFC 2439 implementation directly: a route
flaps hard, gets suppressed, then comes up for good — and we watch how
long the damper keeps the now-healthy route invisible.

Run:  python examples/damping_study.py
"""

from repro.bgp.damping import DampingParameters, RouteFlapDamper
from repro.net.prefix import Prefix


def main() -> None:
    params = DampingParameters()  # classic Cisco defaults
    damper = RouteFlapDamper(params)
    prefix = Prefix.parse("192.0.2.0/24")
    peer = 1

    print("RFC 2439 parameters:")
    print(f"  withdrawal penalty:  {params.withdrawal_penalty:.0f}")
    print(f"  suppress threshold:  {params.suppress_threshold:.0f}")
    print(f"  reuse threshold:     {params.reuse_threshold:.0f}")
    print(f"  half life:           {params.half_life / 60:.0f} min")
    print(f"  max suppress time:   {params.max_suppress_time / 60:.0f} min")
    print()

    # Phase 1: the route flaps once a minute for five minutes.
    print("Phase 1 - a flapping route (one withdrawal per minute):")
    now = 0.0
    for i in range(5):
        now = i * 60.0
        suppressed = damper.on_withdrawal(prefix, peer, now)
        penalty = damper.penalty(prefix, peer, now)
        state = "SUPPRESSED" if suppressed else "announced "
        print(f"  t={now:5.0f}s  flap #{i + 1}  penalty={penalty:7.0f}  {state}")
    print()

    # Phase 2: the route stabilizes; when does it become usable again?
    print("Phase 2 - the route is now healthy; time until reuse:")
    wait = damper.time_until_reuse(prefix, peer, now)
    print(f"  the damper will ignore it for another {wait / 60:.1f} minutes")
    probe = now
    while damper.is_suppressed(prefix, peer, probe):
        probe += 60.0
    print(f"  first usable re-announcement at t={probe / 60:.0f} min")
    print()

    # Phase 3: contrast with a route that flapped slowly.
    slow = Prefix.parse("198.51.100.0/24")
    for i in range(5):
        assert not damper.on_withdrawal(slow, peer, i * 2 * params.half_life)
    print(
        "A route flapping once per two half-lives never accumulates "
        "enough penalty to be suppressed - damping only punishes "
        "*rapid* oscillation."
    )


if __name__ == "__main__":
    main()
