#!/usr/bin/env python3
"""A day at a public exchange point: reproduce a Table-1-style tally.

Builds the full event-driven AADS scenario from the Table 1 experiment
— ten providers with different router implementations and customer
bases, one badly misconfigured (the paper's ISP-I), all peering across
a full mesh plus a Routing Arbiter route server — and prints the
per-provider announce/withdraw/unique tally alongside the paper's
reported extremes.

Run:  python examples/exchange_point_day.py  [--hours H]
"""

import argparse

from repro.experiments.table1 import PROVIDER_SPECS, run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--hours", type=float, default=1.0,
        help="simulated hours to run (default 1.0; the benchmark uses 3)",
    )
    args = parser.parse_args()

    print("Provider configurations:")
    for name, spec in PROVIDER_SPECS.items():
        kind = "stateless" if spec.get("stateless") else "stateful "
        extra = "  << misconfigured (ISP-I analogue)" if spec.get("bad") else ""
        rate = spec.get("flaps", 0.0)
        print(f"  {name}: {kind} BGP, customer flap rate {rate:.4f}/s{extra}")
    print()
    print(f"Simulating {args.hours:.1f} hours at the exchange...")
    result = run(duration=args.hours * 3600.0)
    print()
    print(result.render())
    print()
    print(
        "Compare the paper's Table 1 (Feb 1 1997, AADS): most providers\n"
        "withdraw an order of magnitude more than they announce, and\n"
        "ISP-I announced 259 prefixes while sending 2,479,023 withdrawals\n"
        "for 14,112 distinct prefixes."
    )


if __name__ == "__main__":
    main()
