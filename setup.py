"""Legacy setup shim so editable installs work without network access.

All project metadata lives in pyproject.toml; this file only exists so
``pip install -e .`` can use the legacy ``setup.py develop`` path in
offline environments lacking the ``wheel`` package.
"""

from setuptools import setup

setup()
